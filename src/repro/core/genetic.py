"""The genetic algorithm of PolluxSched (Sec. 4.2.1).

Operates on a population of allocation matrices (one row per job, one column
per node).  Each generation:

1. **Mutation** — every element A_jn is mutated with probability 1/N; a
   mutated element is set to a uniform random integer in [0, capacity_n].
2. **Crossover** — parents are picked by tournament selection; offspring rows
   are randomly mixed from the two parents.
3. **Repair** — matrices are modified to satisfy (a) single-GPU-type
   placements on heterogeneous clusters (each job keeps only the nodes of
   its dominant type, so the per-type speedup lookup stays O(1); a no-op on
   single-type clusters), (b) per-job GPU caps (the 2x-lifetime-max
   exploration rule of Sec. 4.1), (c) per-node capacity (random elements in
   over-capacity columns are decremented until the constraint holds), and
   (d) optionally the interference-avoidance constraint (at most one
   *distributed* job per node).
4. **Selection** — parents and offspring compete; the population size is
   kept constant by discarding the lowest-fitness matrices.

Fitness is the weighted mean of per-job SPEEDUPs (Eqn. 14), with
RESTART_PENALTY subtracted for each running job whose allocation changes.

Two engines implement the loop:

- :class:`GeneticOptimizer` (``"legacy"``) — the original engine.  All
  operators are numpy-vectorized except the repair decrements, which use
  per-violation multivariate hypergeometric draws ("remove excess GPUs
  uniformly at random one at a time, without replacement").  Its random
  stream — and therefore its decision stream — is pinned bit-for-bit; pure
  performance work must not move it.
- :class:`GeneticOptimizerV2` (``"v2"``, the default engine of
  :class:`~repro.core.sched.PolluxSched`) — fully population-vectorized:
  the repair steps run as batched array operations over the whole
  ``(P, J, N)`` population (proportional removal with randomized
  largest-remainder rounding; node-major random-keep interference
  resolution), each generation repairs and scores its candidate batches in
  single calls, and rounds warm-start from the previous round's
  fitness-sorted population plus mutated neighbors of its best, early-
  exiting on a fitness plateau (``GAConfig.patience``, default 5).  Its
  decision stream is deterministic under a fixed seed but deliberately
  *different* from legacy's; the two are held equivalent by benchmarked
  JCT parity instead of bit-identity (see
  ``benchmarks/bench_ga_engines.py`` and the ROADMAP decision-stream
  policy).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.spec import ClusterSpec

__all__ = [
    "GAConfig",
    "JobGAInfo",
    "AllocationProblem",
    "GeneticOptimizer",
    "GeneticOptimizerV2",
    "make_optimizer",
    "GA_ENGINES",
]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic algorithm.

    The paper runs 100 generations with a population of 100 per 60 s
    scheduling interval (Sec. 5.1); smaller budgets give the same decisions
    on small clusters and are used to keep test/benchmark runtimes modest.

    ``patience`` enables plateau early-exit in the v2 engine: when > 0, the
    GA stops once the best fitness has not improved for that many
    consecutive generations.  Warm-started rounds typically plateau within
    a few generations — the previous round's winner is already in the seed
    population — while cold starts (first round, autoscaler probes) keep
    improving and run their full budget, so the default of 5 buys the
    steady-state speedup without costing cold-start search quality
    (validated by the JCT-parity benchmark).  0 disables early exit.  The
    legacy engine ignores ``patience`` entirely — its generation count,
    and with it its random stream, stays bit-for-bit pinned.
    """

    population_size: int = 100
    generations: int = 100
    tournament_size: int = 3
    seed: int = 0
    patience: int = 5

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if self.patience < 0:
            raise ValueError("patience must be non-negative")


@dataclass
class JobGAInfo:
    """Per-job inputs to the allocation problem.

    Attributes:
        speedup_table: Array of shape (max_gpus + 1, 2) for single-type
            clusters, or (max_gpus + 1, 2, num_types) for typed clusters;
            axis 1 index 0 is the speedup when all GPUs are co-located on
            one node, index 1 when they span two or more nodes, and the
            trailing axis (when present) selects the GPU type of the
            placement (see :mod:`repro.core.speedup`).
        weight: The job's weight w_j in FITNESS (Eqn. 14/16).
        max_gpus: Hard cap on total GPUs for this job (Sec. 4.1: at most 2x
            the lifetime maximum).
        current_alloc: The job's current allocation vector (length = number
            of nodes); used for the restart penalty.
        running: Whether the job currently holds GPUs (a change of a running
            job's allocation requires a checkpoint-restart and incurs
            RESTART_PENALTY).
    """

    speedup_table: np.ndarray
    weight: float
    max_gpus: int
    current_alloc: np.ndarray
    running: bool

    def __post_init__(self) -> None:
        self.speedup_table = np.asarray(self.speedup_table, dtype=float)
        if self.speedup_table.ndim not in (2, 3) or self.speedup_table.shape[1] != 2:
            raise ValueError(
                "speedup_table must have shape (K+1, 2) or (K+1, 2, T)"
            )
        if self.max_gpus < 1:
            raise ValueError("max_gpus must be >= 1")
        if self.max_gpus > self.speedup_table.shape[0] - 1:
            raise ValueError(
                f"max_gpus={self.max_gpus} exceeds speedup table rows "
                f"({self.speedup_table.shape[0]})"
            )
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        self.current_alloc = np.asarray(self.current_alloc, dtype=np.int64)


class AllocationProblem:
    """Fitness evaluation and constraints for one scheduling round."""

    def __init__(
        self,
        cluster: ClusterSpec,
        jobs: Sequence[JobGAInfo],
        restart_penalty: float = 0.25,
        forbid_interference: bool = True,
    ):
        self.cluster = cluster
        self.jobs = list(jobs)
        self.restart_penalty = float(restart_penalty)
        self.forbid_interference = forbid_interference
        self.num_jobs = len(self.jobs)
        self.num_nodes = cluster.num_nodes
        self.capacities = cluster.capacities()
        self.num_types = cluster.num_types
        self.node_type_ids = cluster.node_type_ids()
        self.type_speeds = cluster.type_speeds()
        #: (T, N) 0/1 membership matrix for per-type GPU sums.
        self.type_masks = (
            self.node_type_ids[None, :] == np.arange(self.num_types)[:, None]
        ).astype(np.int64)
        #: Cluster compute capacity in slowest-type-GPU equivalents.  Typed
        #: speedup tables are normalized by the slowest type, so this is the
        #: UTILITY denominator that keeps Eqn. 17 in [0, ~1] on mixed
        #: fleets; it equals total_gpus on single-type clusters.
        self.effective_gpus = float(
            np.sum(self.capacities * cluster.node_speeds())
            / self.type_speeds.min()
        )

        if self.num_jobs:
            self.max_gpus = np.array([j.max_gpus for j in self.jobs], dtype=np.int64)
            self.weights = np.array([j.weight for j in self.jobs], dtype=float)
            self.current = np.stack([j.current_alloc for j in self.jobs])
            self.running = np.array([j.running for j in self.jobs], dtype=bool)
            k_rows = int(self.max_gpus.max()) + 1
            self.tables = np.zeros(
                (self.num_jobs, k_rows, 2, self.num_types), dtype=float
            )
            for idx, job in enumerate(self.jobs):
                table = job.speedup_table
                if table.ndim == 2:
                    # Untyped table: the same speedup on every type.
                    table = np.repeat(table[:, :, None], self.num_types, axis=2)
                if table.shape[2] != self.num_types:
                    raise ValueError(
                        f"speedup_table has {table.shape[2]} type columns, "
                        f"cluster has {self.num_types}"
                    )
                rows = min(table.shape[0], k_rows)
                self.tables[idx, :rows] = table[:rows]
                if rows < k_rows:
                    # Pad with the last row; repair keeps K <= max_gpus so
                    # these cells are never actually selected.
                    self.tables[idx, rows:] = table[-1]
        else:
            self.max_gpus = np.zeros(0, dtype=np.int64)
            self.weights = np.zeros(0, dtype=float)
            self.current = np.zeros((0, self.num_nodes), dtype=np.int64)
            self.running = np.zeros(0, dtype=bool)
            self.tables = np.zeros((0, 1, 2, self.num_types), dtype=float)

    def speedups(self, population: np.ndarray) -> np.ndarray:
        """Per-job SPEEDUP for a (P, J, N) population; returns (P, J).

        On typed clusters the lookup uses the *slowest occupied* GPU type,
        matching the simulator's ground truth (synchronous data-parallel
        SGD is gated by its slowest replica).  Repaired populations hold
        single-type placements, where this is simply the placement's type;
        un-repaired matrices (e.g. current allocations straddling types
        after a resize) are scored at the speed they would actually run at.
        """
        pop = np.asarray(population)
        k = np.minimum(pop.sum(axis=-1), self.max_gpus[None, :])
        flag = ((pop > 0).sum(axis=-1) >= 2).astype(np.int64)
        j_idx = np.arange(self.num_jobs)[None, :]
        if self.num_types == 1:
            return self.tables[j_idx, k, flag, 0]
        per_type = np.einsum("pjn,tn->pjt", pop, self.type_masks)
        occupied_speeds = np.where(
            per_type > 0, self.type_speeds[None, None, :], np.inf
        )
        # Rows with no GPUs degenerate to type 0; their K = 0 lookup is 0.
        type_idx = np.argmin(occupied_speeds, axis=-1)
        return self.tables[j_idx, k, flag, type_idx]

    def fitness(self, population: np.ndarray) -> np.ndarray:
        """FITNESS(A) (Eqn. 14) for a (P, J, N) population; returns (P,)."""
        pop = np.asarray(population)
        if self.num_jobs == 0:
            return np.zeros(pop.shape[0], dtype=float)
        sp = self.speedups(pop)
        changed = np.any(pop != self.current[None], axis=-1)
        penalty = self.restart_penalty * (changed & self.running[None, :])
        weighted = self.weights[None, :] * (sp - penalty)
        denom = self.weights.sum()
        if denom <= 0:
            return np.zeros(pop.shape[0], dtype=float)
        return weighted.sum(axis=-1) / denom

    def utility(self, matrix: np.ndarray) -> float:
        """UTILITY(A) = sum_j SPEEDUP_j / TOTAL_GPUS (Eqn. 17).

        On typed clusters the denominator is the capacity in
        slowest-type-GPU equivalents (a V100 at 2x counts as 2), so the
        value stays comparable to the operator's [0, 1] utility band; on
        single-type clusters this is exactly the paper's TOTAL_GPUS.
        """
        sp = self.speedups(np.asarray(matrix)[None])
        total = self.effective_gpus
        return float(sp.sum() / total) if total > 0 else 0.0


class GeneticOptimizer:
    """Runs the Sec. 4.2.1 genetic algorithm on an allocation problem.

    This is the ``"legacy"`` engine: its random stream is pinned bit-for-bit
    (see the module docstring), so changes here must not alter the sequence
    of RNG draws.  ``phase_ms`` accumulates wall-clock per GA phase
    (``repair_ms``/``fitness_ms``/``select_ms``/``mutate_ms``) across one
    :meth:`run`; timing instrumentation consumes no randomness.
    """

    def __init__(
        self,
        problem: AllocationProblem,
        config: GAConfig = GAConfig(),
        rng: Optional[np.random.Generator] = None,
    ):
        self.problem = problem
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.phase_ms: Dict[str, float] = {}
        self._reset_timings()

    def _reset_timings(self) -> None:
        self.phase_ms = {
            "repair_ms": 0.0,
            "fitness_ms": 0.0,
            "select_ms": 0.0,
            "mutate_ms": 0.0,
        }

    def _timed_fitness(self, population: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        out = self.problem.fitness(population)
        self.phase_ms["fitness_ms"] += (time.perf_counter() - t0) * 1000.0
        return out

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _mutate(self, population: np.ndarray) -> np.ndarray:
        """Mutate each element with probability 1/N to a random feasible value."""
        prob = 1.0 / max(self.problem.num_nodes, 1)
        shape = population.shape
        mask = self.rng.random(shape) < prob
        caps = self.problem.capacities[None, None, :]
        random_vals = self.rng.integers(0, caps + 1, size=shape)
        return np.where(mask, random_vals, population)

    def _tournament(self, fitness: np.ndarray, count: int) -> np.ndarray:
        """Indices of ``count`` winners of size-k tournaments."""
        pop_size = len(fitness)
        k = min(self.config.tournament_size, pop_size)
        entrants = self.rng.integers(0, pop_size, size=(count, k))
        winner_slot = np.argmax(fitness[entrants], axis=1)
        return entrants[np.arange(count), winner_slot]

    def _crossover(self, population: np.ndarray, fitness: np.ndarray) -> np.ndarray:
        """Produce offspring by randomly mixing rows of tournament winners."""
        count = population.shape[0]
        parents_a = population[self._tournament(fitness, count)]
        parents_b = population[self._tournament(fitness, count)]
        take_a = self.rng.random((count, self.problem.num_jobs, 1)) < 0.5
        return np.where(take_a, parents_a, parents_b)

    def _repair(self, population: np.ndarray) -> np.ndarray:
        """Apply type groups, per-job caps, capacities, and interference."""
        t0 = time.perf_counter()
        pop = population.copy()
        if self.problem.num_types > 1:
            self._repair_type_groups(pop)
        self._repair_job_caps(pop)
        self._repair_capacity(pop)
        if self.problem.forbid_interference:
            self._repair_interference(pop)
        self.phase_ms["repair_ms"] += (time.perf_counter() - t0) * 1000.0
        return pop

    def _repair_type_groups(self, pop: np.ndarray) -> None:
        """Restrict each job's placement to a single GPU-type group.

        Rows spanning several types keep only the nodes of their dominant
        type (most GPUs; ties break toward the first type), zeroing the
        rest.  Deterministic — consumes no randomness — so single-type
        clusters (where this step is skipped entirely) replay the seed's
        exact random stream.
        """
        per_type = np.einsum(
            "pjn,tn->pjt", pop, self.problem.type_masks
        )  # (P, J, T)
        spans = (per_type > 0).sum(axis=-1) >= 2  # (P, J)
        where_p, where_j = np.where(spans)
        if len(where_p) == 0:
            return
        dominant = np.argmax(per_type[where_p, where_j], axis=-1)  # (V,)
        keep_mask = self.problem.type_masks[dominant]  # (V, N)
        pop[where_p, where_j] = pop[where_p, where_j] * keep_mask

    def _repair_job_caps(self, pop: np.ndarray) -> None:
        """Decrement random entries of rows exceeding the per-job GPU cap."""
        totals = pop.sum(axis=-1)
        excess = totals - self.problem.max_gpus[None, :]
        where_p, where_j = np.where(excess > 0)
        amounts = excess[where_p, where_j].tolist()
        for p, j, amount in zip(where_p.tolist(), where_j.tolist(), amounts):
            row = pop[p, j]
            removal = self.rng.multivariate_hypergeometric(row, amount)
            pop[p, j] = row - removal

    def _repair_capacity(self, pop: np.ndarray) -> None:
        """Decrement random entries of over-capacity node columns."""
        used = pop.sum(axis=1)  # (P, N)
        excess = used - self.problem.capacities[None, :]
        where_p, where_n = np.where(excess > 0)
        amounts = excess[where_p, where_n].tolist()
        for p, n, amount in zip(where_p.tolist(), where_n.tolist(), amounts):
            col = pop[p, :, n]
            removal = self.rng.multivariate_hypergeometric(col, amount)
            pop[p, :, n] = col - removal

    def _repair_interference(self, pop: np.ndarray) -> None:
        """Ensure at most one distributed job occupies each node.

        Repeatedly finds (member, node) pairs where two or more distributed
        jobs share the node and removes all but one (randomly kept) of them
        from that node, as in Sec. 4.2.1.

        After the first full-population pass, only members that just had
        violations fixed can still violate (fixes never touch other
        members), so re-checks are restricted to those rows — the (member,
        node) pairs produced are identical to a full re-scan (and so is the
        random stream), at a fraction of the detection cost.
        """
        member_idx: Optional[np.ndarray] = None  # None = scan all members
        for _ in range(self.problem.num_nodes + 1):
            sub = pop if member_idx is None else pop[member_idx]
            present = sub > 0  # (P', J, N)
            dist = present.sum(axis=-1) >= 2  # (P', J)
            sharing = (present & dist[:, :, None]).sum(axis=1)  # (P', N)
            where_p, where_n = np.where(sharing >= 2)
            if len(where_p) == 0:
                return
            if member_idx is not None:
                where_p = member_idx[where_p]
            # Walk violations member by member (np.where yields them
            # member-major), keeping that member's per-job occupied-node
            # counts incrementally up to date: zeroing an entry that held
            # GPUs lowers the job's count by exactly one, so the fresh
            # "is this job still distributed" re-check the original
            # formulation recomputed per violation reduces to an O(1)
            # update with identical results.
            counts: Optional[np.ndarray] = None
            cur_p = -1
            for p, n in zip(where_p.tolist(), where_n.tolist()):
                if p != cur_p:
                    cur_p = p
                    counts = (pop[p] > 0).sum(axis=-1)
                offenders = np.where((pop[p, :, n] > 0) & (counts >= 2))[0]
                if len(offenders) < 2:
                    continue
                keep = offenders[self.rng.integers(0, len(offenders))]
                drop = offenders[offenders != keep]
                pop[p, drop, n] = 0
                counts[drop] -= 1
            member_idx = np.unique(where_p)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def seed_population(
        self, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Build the starting population.

        Always includes the current allocation matrix (a restart-free
        candidate); the remainder comes from ``initial`` (the previous
        round's population, per Sec. 4.3) padded with mutated copies of the
        current allocations.
        """
        p_size = self.config.population_size
        num_jobs = self.problem.num_jobs
        num_nodes = self.problem.num_nodes
        members: List[np.ndarray] = [self.problem.current.copy()]
        if initial is not None:
            init = np.asarray(initial, dtype=np.int64)
            if init.ndim != 3 or init.shape[1:] != (num_jobs, num_nodes):
                raise ValueError(
                    f"initial population has shape {init.shape}, expected "
                    f"(*, {num_jobs}, {num_nodes})"
                )
            members.extend(init[: p_size - 1])
        while len(members) < p_size:
            members.append(self.problem.current.copy())
        pop = np.stack(members[:p_size]).astype(np.int64)
        # Diversify the padded copies.
        if initial is None or len(initial) < p_size - 1:
            tail = pop[1:]
            pop[1:] = self._mutate(tail)
        return self._repair(pop)

    def run(
        self, initial: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, float, np.ndarray]:
        """Run the GA and return (best matrix, best fitness, population).

        The returned population (sorted by descending fitness) can bootstrap
        the next scheduling round.
        """
        self._reset_timings()
        if self.problem.num_jobs == 0:
            empty = np.zeros((0, self.problem.num_nodes), dtype=np.int64)
            return empty, 0.0, np.zeros(
                (self.config.population_size, 0, self.problem.num_nodes),
                dtype=np.int64,
            )

        population = self.seed_population(initial)
        fitness = self._timed_fitness(population)

        for _ in range(self.config.generations):
            t0 = time.perf_counter()
            mutated = self._mutate(population)
            self.phase_ms["mutate_ms"] += (time.perf_counter() - t0) * 1000.0
            mutated = self._repair(mutated)
            mutated_fitness = self._timed_fitness(mutated)
            t0 = time.perf_counter()
            offspring = self._crossover(mutated, mutated_fitness)
            self.phase_ms["select_ms"] += (time.perf_counter() - t0) * 1000.0
            offspring = self._repair(offspring)
            offspring_fitness = self._timed_fitness(offspring)

            t0 = time.perf_counter()
            pool = np.concatenate([population, mutated, offspring])
            pool_fitness = np.concatenate(
                [fitness, mutated_fitness, offspring_fitness]
            )
            order = np.argsort(-pool_fitness, kind="stable")
            keep = order[: self.config.population_size]
            population = pool[keep]
            fitness = pool_fitness[keep]
            self.phase_ms["select_ms"] += (time.perf_counter() - t0) * 1000.0

        best_idx = int(np.argmax(fitness))
        return population[best_idx].copy(), float(fitness[best_idx]), population


class GeneticOptimizerV2(GeneticOptimizer):
    """Fully population-vectorized GA engine (``"v2"``).

    Differences from the legacy engine, all benchmarked in
    ``benchmarks/bench_ga_engines.py``:

    - **Vectorized repair.**  Job-cap and capacity repair are *fused*:
      over-cap job rows and over-capacity node columns are stacked into a
      single counts matrix and resolved by one :meth:`_batched_remove`
      call — the excess is split proportionally to the entry counts with
      the fractional remainder rounded by random priorities (randomized
      largest-remainder rounding), instead of per-violation hypergeometric
      draws (see :meth:`_repair_caps_capacity`).
      Interference repair runs node-major passes batched over the whole
      population — every member's first violating node keeps one uniformly
      random distributed job — with the distributed set recomputed between
      passes (see :meth:`_repair_interference` for why single-pass
      resolution over-removes).
    - **Same search structure as legacy, batched.**  Each generation
      mutates the population, scores the repaired mutants, and recombines
      tournament winners *of the mutants* — the explore-then-recombine
      order matters (crossover of two good mutants assembles coordinated
      multi-job reallocation moves; elite-crossover variants measurably
      cost avg JCT on saturated traces).  Selection keeps legacy's stable
      sort: on fitness ties the earlier pool member wins, so an
      equally-fit incumbent (restart-free) allocation is never displaced
      by a reshuffled twin — with arbitrary tie-breaking that churn alone
      cost several percent avg JCT.
    - **Warm start.**  The seed population pads with mutated neighbors of
      the *best known* matrix (the previous round's winner when a bootstrap
      population is given) rather than copies of the current allocations,
      and ``GAConfig.patience > 0`` (default 5) early-exits once the best
      fitness has plateaued for that many generations — warm-started
      rounds finish in a few generations, cold starts run their budget.

    The engine is deterministic under a fixed seed but produces a
    *different* decision stream than legacy — equivalence is held by
    seed-averaged JCT parity on the fig-6 trace (±2%), not bit-identity.
    """

    #: Optional (J,) bool mask restricting mutation to dirty jobs' rows
    #: (incremental rounds).  ``None`` — the default — mutates every row.
    _mutate_rows: Optional[np.ndarray] = None

    def _mutate(self, population: np.ndarray) -> np.ndarray:
        """Same operator as legacy, with a scalar-bound RNG fast path.

        On uniform-capacity clusters ``Generator.integers`` with a scalar
        upper bound is substantially cheaper than the broadcast-array
        bound; the draw distribution is identical, only the stream differs
        (which the v2 engine is free to do).

        When ``run(..., mutate_rows=...)`` supplied a dirty-row mask, the
        mutation mask is intersected with it: clean jobs' rows pass through
        unchanged, so an incremental round only explores reallocations
        involving jobs whose inputs actually moved.  The random draws are
        still made for every entry — masking filters, it does not reshape
        the stream — which keeps the operator's cost profile and RNG
        consumption independent of the dirty-set size.
        """
        caps = self.problem.capacities
        prob = 1.0 / max(self.problem.num_nodes, 1)
        shape = population.shape
        mask = self.rng.random(shape) < prob
        if self._mutate_rows is not None:
            mask &= self._mutate_rows[None, :, None]
        if caps.size and caps.min() == caps.max():
            random_vals = self.rng.integers(0, int(caps[0]) + 1, size=shape)
        else:
            random_vals = self.rng.integers(0, caps[None, None, :] + 1, size=shape)
        return np.where(mask, random_vals, population)

    # ------------------------------------------------------------------
    # Vectorized repair
    # ------------------------------------------------------------------

    def _batched_remove(
        self, counts: np.ndarray, excess: np.ndarray
    ) -> np.ndarray:
        """Removal matrix taking ``excess[i]`` units from row ``counts[i]``.

        The removal is proportional to the counts with the fractional
        remainder assigned by random priorities among the rounded-down
        entries, so every entry with mass can shed GPUs and the expected
        removal per entry matches the uniform-without-replacement repair in
        distribution shape (exactly proportional mean, randomized
        remainder).  Guarantees ``0 <= removal <= counts`` and
        ``removal.sum(1) >= excess`` row-wise (equality except in
        pathological float-rounding corners, where a deterministic top-up
        keeps the constraint satisfied).
        """
        c = counts.astype(float)
        total = c.sum(axis=1)
        ideal = np.minimum(excess[:, None] * (c / total[:, None]), c)
        base = np.floor(ideal)
        frac = ideal - base
        base = base.astype(np.int64)
        extra = excess - base.sum(axis=1)  # (V,)
        # Random priority among entries with a fractional share; entries
        # with frac == 0 sort last and are never picked (there are always
        # at least `extra` fractional entries, since the fracs sum to it).
        keys = np.where(frac > 0.0, self.rng.random(c.shape), -1.0)
        order = np.argsort(-keys, axis=1, kind="stable")
        ranks = np.empty_like(order)
        v_idx = np.arange(order.shape[0])[:, None]
        ranks[v_idx, order] = np.arange(order.shape[1])[None, :]
        removal = base + ((ranks < extra[:, None]) & (frac > 0.0))
        # Float-rounding safety net: top up any row still short of its
        # excess from the entries with the most remaining mass.  Never
        # triggers for exact arithmetic; bounded by the residual deficit.
        deficit = excess - removal.sum(axis=1)
        while np.any(deficit > 0):
            rows = np.where(deficit > 0)[0]
            headroom = counts[rows] - removal[rows]
            pick = np.argmax(headroom, axis=1)
            removal[rows, pick] += 1
            deficit[rows] -= 1
        return removal

    def _repair(self, population: np.ndarray) -> np.ndarray:
        """Type groups, then fused caps+capacity, then interference."""
        t0 = time.perf_counter()
        pop = population.copy()
        if self.problem.num_types > 1:
            self._repair_type_groups(pop)
        self._repair_caps_capacity(pop)
        if self.problem.forbid_interference:
            self._repair_interference(pop)
        self.phase_ms["repair_ms"] += (time.perf_counter() - t0) * 1000.0
        return pop

    def _repair_caps_capacity(self, pop: np.ndarray) -> None:
        """Fused job-cap + node-capacity repair in one batched pass.

        Both violation sets are detected on the *same* input matrix and
        fed through a single :meth:`_batched_remove` call: over-cap job
        rows (length N) and over-capacity node columns (length J) are
        padded to a common width and stacked into one counts matrix, so the
        proportional split, the randomized largest-remainder rounding, and
        the argsort behind it all run once over the combined violation set
        instead of twice sequentially.

        Application stays order-correct: row removals land first (exact —
        every over-cap job ends at or below its cap, and later column
        removals only shrink rows further), then each violating column's
        removal is re-targeted at its *remaining* excess.  A column whose
        entries no row removal touched applies the fused draw as-is (its
        total already equals the excess).  Columns that overlapped a row
        removal are *redrawn* against the post-row-removal state with a
        second proportional :meth:`_batched_remove` — exactly what the
        sequential form did for every column.  The redraw matters: a
        deterministic fix-up (e.g. clipping plus argmax give-back) skews
        removals toward the largest allocations and measurably degrades
        seed-averaged JCT parity, while the randomized-proportional redraw
        preserves the repair distribution.  Column removals only subtract,
        so already-satisfied row caps stay satisfied.  The combined stream
        differs from the sequential form's (still seeded, still
        deterministic) — a decision-stream change within the v2 engine's
        benchmarked-equivalence tier.
        """
        num_jobs = self.problem.num_jobs
        num_nodes = self.problem.num_nodes
        row_totals = pop.sum(axis=-1)  # (P, J)
        row_excess = row_totals - self.problem.max_gpus[None, :]
        row_p, row_j = np.where(row_excess > 0)
        col_totals = pop.sum(axis=1)  # (P, N)
        col_excess = col_totals - self.problem.capacities[None, :]
        col_p, col_n = np.where(col_excess > 0)
        n_rows, n_cols = len(row_p), len(col_p)
        if n_rows == 0 and n_cols == 0:
            return

        width = max(num_nodes, num_jobs)
        counts = np.zeros((n_rows + n_cols, width), dtype=np.int64)
        if n_rows:
            counts[:n_rows, :num_nodes] = pop[row_p, row_j]
        if n_cols:
            counts[n_rows:, :num_jobs] = pop[col_p, :, col_n]
        excess = np.concatenate(
            [row_excess[row_p, row_j], col_excess[col_p, col_n]]
        )
        removal = self._batched_remove(counts, excess)

        if n_rows:
            pop[row_p, row_j] -= removal[:n_rows, :num_nodes]
        if n_cols:
            cols = pop[col_p, :, col_n]  # (V, J), post-row-removal
            take = np.minimum(removal[n_rows:, :num_jobs], cols)
            need = np.maximum(
                cols.sum(axis=1) - self.problem.capacities[col_n], 0
            )
            # Columns untouched by row removals keep the fused draw (the
            # clip never binds and the total already equals the excess);
            # the rest are redrawn proportionally on the surviving mass.
            redo = np.where(take.sum(axis=1) != need)[0]
            if len(redo):
                take[redo] = 0
                live = redo[need[redo] > 0]
                if len(live):
                    take[live] = self._batched_remove(cols[live], need[live])
            pop[col_p, :, col_n] = cols - take

    def _repair_interference(self, pop: np.ndarray) -> None:
        """Node-major interference resolution, batched over the population.

        Each pass picks every member's *first* still-violating node, keeps
        one of its distributed jobs (uniformly at random via
        max-of-iid-uniform keys), and drops the others from that node — all
        members at once.  The distributed-job set is recomputed between
        passes, so a job that fell to a single node stops being evicted
        elsewhere: resolving everything in one pass from the *pre-repair*
        distributed set over-removes (a job conflicted at several nodes
        would lose all of them at once), which measurably under-allocates
        saturated clusters.  At most one pass per node, each a handful of
        array reductions.
        """
        num_members, _, num_nodes = pop.shape
        member_idx = np.arange(num_members)
        for _ in range(num_nodes):
            present = pop > 0
            dist = present.sum(axis=-1) >= 2  # (P, J)
            dist_present = present & dist[:, :, None]  # (P, J, N)
            violating = dist_present.sum(axis=1) >= 2  # (P, N)
            if not violating.any():
                return
            first_n = np.argmax(violating, axis=1)  # (P,)
            rows = np.where(violating[member_idx, first_n])[0]
            candidates = dist_present[rows, :, first_n[rows]]  # (V, J)
            keys = np.where(candidates, self.rng.random(candidates.shape), -1.0)
            keep = np.argmax(keys, axis=1)
            drop = candidates
            drop[np.arange(len(rows)), keep] = False
            cols = pop[rows, :, first_n[rows]]
            cols[drop] = 0
            pop[rows, :, first_n[rows]] = cols

    # ------------------------------------------------------------------
    # Warm start and main loop
    # ------------------------------------------------------------------

    def seed_population(
        self, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Seed from the current allocations plus the previous round's best.

        Member 0 is always the current allocation matrix (the restart-free
        candidate).  A bootstrap population contributes its members next —
        it arrives fitness-sorted, so member 1 is the previous round's best
        allocation.  Any remaining slots are mutated neighbors of the best
        known matrix, which concentrates the initial population around the
        incumbent solution so warm-started rounds plateau (and early-exit)
        quickly.
        """
        p_size = self.config.population_size
        num_jobs = self.problem.num_jobs
        num_nodes = self.problem.num_nodes
        members: List[np.ndarray] = [self.problem.current.copy()]
        anchor = self.problem.current
        if initial is not None:
            init = np.asarray(initial, dtype=np.int64)
            if init.ndim != 3 or init.shape[1:] != (num_jobs, num_nodes):
                raise ValueError(
                    f"initial population has shape {init.shape}, expected "
                    f"(*, {num_jobs}, {num_nodes})"
                )
            if len(init):
                anchor = init[0]
                members.extend(init[: p_size - 1])
        fill = p_size - len(members)
        if fill > 0:
            neighbors = np.repeat(anchor[None], fill, axis=0)
            members.append(self._mutate(neighbors).reshape(fill, num_jobs, num_nodes))
            pop = np.concatenate(
                [np.stack(members[:-1]), members[-1]]
            ).astype(np.int64)
        else:
            pop = np.stack(members[:p_size]).astype(np.int64)
        return self._repair(pop)

    def run(
        self,
        initial: Optional[np.ndarray] = None,
        mutate_rows: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, float, np.ndarray]:
        """Run the v2 GA; returns (best matrix, best fitness, population).

        The returned population is fitness-sorted descending, so element 0
        of the next round's bootstrap is this round's best allocation.

        ``mutate_rows`` — an optional (num_jobs,) bool mask — restricts
        mutation to the marked (dirty) jobs' rows for incremental rounds:
        clean jobs ride along unmutated from the warm population, while
        crossover and repair stay unrestricted so dirty jobs can still
        claim GPUs held by clean ones (capacity repair arbitrates).
        """
        self._reset_timings()
        if mutate_rows is None:
            self._mutate_rows = None
        else:
            mask = np.asarray(mutate_rows, dtype=bool)
            if mask.shape != (self.problem.num_jobs,):
                raise ValueError(
                    f"mutate_rows has shape {mask.shape}, expected "
                    f"({self.problem.num_jobs},)"
                )
            # An all-dirty mask is a full round; drop it so the uniform
            # fast path stays mask-free.
            self._mutate_rows = mask if not mask.all() else None
        if self.problem.num_jobs == 0:
            empty = np.zeros((0, self.problem.num_nodes), dtype=np.int64)
            return empty, 0.0, np.zeros(
                (self.config.population_size, 0, self.problem.num_nodes),
                dtype=np.int64,
            )

        p_size = self.config.population_size
        population = self.seed_population(initial)
        fitness = self._timed_fitness(population)
        t0 = time.perf_counter()
        order = np.argsort(-fitness, kind="stable")
        population = population[order]
        fitness = fitness[order]
        self.phase_ms["select_ms"] += (time.perf_counter() - t0) * 1000.0

        best_fitness = float(fitness[0])
        stall = 0
        for _ in range(self.config.generations):
            # Legacy's generation structure — mutate the population, score
            # the repaired mutants, then recombine tournament winners *of
            # the mutants* — with every step batched.  The
            # explore-then-recombine order matters: crossover of two good
            # mutants assembles coordinated multi-job reallocation moves
            # (take GPUs from one job, give to another) that crossover of
            # near-identical elites cannot, and saturated clusters are
            # exactly where such moves pay (benchmarked: elite-crossover
            # variants cost several percent avg JCT on overloaded traces).
            t0 = time.perf_counter()
            mutated = self._mutate(population)
            self.phase_ms["mutate_ms"] += (time.perf_counter() - t0) * 1000.0
            mutated = self._repair(mutated)
            mutated_fitness = self._timed_fitness(mutated)
            t0 = time.perf_counter()
            offspring = self._crossover(mutated, mutated_fitness)
            self.phase_ms["select_ms"] += (time.perf_counter() - t0) * 1000.0
            offspring = self._repair(offspring)
            offspring_fitness = self._timed_fitness(offspring)

            t0 = time.perf_counter()
            pool = np.concatenate([population, mutated, offspring])
            pool_fitness = np.concatenate(
                [fitness, mutated_fitness, offspring_fitness]
            )
            # Stable sort, like legacy: on fitness ties the *earlier* pool
            # member wins, so an equally-fit incumbent (restart-free)
            # allocation is never displaced by a reshuffled twin.
            keep = np.argsort(-pool_fitness, kind="stable")[:p_size]
            population = pool[keep]
            fitness = pool_fitness[keep]
            self.phase_ms["select_ms"] += (time.perf_counter() - t0) * 1000.0

            if self.config.patience > 0:
                if float(fitness[0]) > best_fitness + 1e-12:
                    best_fitness = float(fitness[0])
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.config.patience:
                        break
            else:
                best_fitness = float(fitness[0])

        return population[0].copy(), float(fitness[0]), population


#: Engine name -> optimizer class; ``PolluxSchedConfig.ga_engine`` keys this.
GA_ENGINES = {
    "legacy": GeneticOptimizer,
    "v2": GeneticOptimizerV2,
}


def make_optimizer(
    engine: str,
    problem: AllocationProblem,
    config: GAConfig = GAConfig(),
    rng: Optional[np.random.Generator] = None,
) -> GeneticOptimizer:
    """Instantiate a GA engine by name (``"legacy"`` or ``"v2"``)."""
    try:
        cls = GA_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown GA engine {engine!r}; known: {sorted(GA_ENGINES)}"
        ) from None
    return cls(problem, config, rng=rng)
