"""Golden-section search for unimodal maximization.

Pollux maximizes GOODPUT(a, m) over the batch size m (Sec. 4.1, Eqn. 13) and
the numerator/denominator of SPEEDUP (Sec. 4.2, Eqn. 15) using golden-section
search [Kiefer 1953], exploiting the observation that GOODPUT is a unimodal
function of m.  This module provides both a continuous and an integer variant.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

__all__ = ["golden_section_search", "golden_section_search_int"]

#: The inverse golden ratio, (sqrt(5) - 1) / 2.
INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0
#: Its square, used to place the two initial interior probes.
INV_PHI2 = (3.0 - math.sqrt(5.0)) / 2.0


def golden_section_search(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-6,
    max_iters: int = 200,
) -> Tuple[float, float]:
    """Maximize a unimodal function ``fn`` over the interval ``[lo, hi]``.

    Args:
        fn: Unimodal function to maximize.
        lo: Lower bound of the search interval.
        hi: Upper bound of the search interval.
        tol: Terminate when the bracketing interval is narrower than this.
        max_iters: Hard cap on the number of probe evaluations.

    Returns:
        Tuple ``(x, fn(x))`` at the located maximum.

    Raises:
        ValueError: If ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"invalid interval: lo={lo} > hi={hi}")
    if hi - lo <= tol:
        mid = 0.5 * (lo + hi)
        return mid, fn(mid)

    a, b = lo, hi
    h = b - a
    xc = a + INV_PHI2 * h
    xd = a + INV_PHI * h
    fc = fn(xc)
    fd = fn(xd)

    for _ in range(max_iters):
        if h <= tol:
            break
        if fc >= fd:
            # Maximum lies in [a, xd]; shrink from the right.
            b = xd
            xd, fd = xc, fc
            h = b - a
            xc = a + INV_PHI2 * h
            fc = fn(xc)
        else:
            # Maximum lies in [xc, b]; shrink from the left.
            a = xc
            xc, fc = xd, fd
            h = b - a
            xd = a + INV_PHI * h
            fd = fn(xd)

    if fc >= fd:
        return xc, fc
    return xd, fd


def golden_section_search_int(
    fn: Callable[[int], float],
    lo: int,
    hi: int,
    max_iters: int = 200,
) -> Tuple[int, float]:
    """Maximize a unimodal function over the integers in ``[lo, hi]``.

    Uses golden-section bracketing on the integer lattice, then resolves the
    final (small) bracket by exhaustive evaluation.  Suitable for discrete
    batch sizes.

    Args:
        fn: Unimodal function over integers to maximize.
        lo: Smallest candidate (inclusive).
        hi: Largest candidate (inclusive).
        max_iters: Hard cap on bracketing iterations.

    Returns:
        Tuple ``(x, fn(x))`` at the located maximum.

    Raises:
        ValueError: If ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"invalid interval: lo={lo} > hi={hi}")
    a, b = lo, hi
    cache = {}

    def eval_cached(x: int) -> float:
        if x not in cache:
            cache[x] = fn(x)
        return cache[x]

    iters = 0
    while b - a > 3 and iters < max_iters:
        h = b - a
        xc = a + int(round(INV_PHI2 * h))
        xd = a + int(round(INV_PHI * h))
        # Keep probes strictly interior and distinct.
        xc = min(max(xc, a + 1), b - 1)
        xd = min(max(xd, xc + 1), b - 1)
        if eval_cached(xc) >= eval_cached(xd):
            b = xd
        else:
            a = xc
        iters += 1

    best_x = a
    best_f = eval_cached(a)
    for x in range(a + 1, b + 1):
        fx = eval_cached(x)
        if fx > best_f:
            best_x, best_f = x, fx
    return best_x, best_f
