"""SPEEDUP_j(A_j) (Sec. 4.2, Eqn. 15) and vectorized speedup tables.

    SPEEDUP_j(A_j) = max_m GOODPUT_j(A_j, m) / max_m GOODPUT_j(1, m)

A single allocated GPU always yields a speedup of 1, and speedup grows
sub-linearly with more GPUs.  Because the paper's T_sync model (Eqn. 10)
distinguishes placements only by K (total GPUs) and whether all replicas are
co-located on one node, SPEEDUP depends on the placement A_j only through
(K, min(N, 2)).  We exploit this to precompute per-job speedup *tables* of
shape (K_max + 1, 2) which the genetic algorithm evaluates with O(1) lookups,
and we vectorize the inner max over the batch size on a dense geometric grid
(GOODPUT is unimodal in m, so the grid optimum matches golden-section).

**Typed GPU nodes.**  On a heterogeneous cluster every placement the genetic
algorithm considers lives inside a single GPU-type group (the type-group
repair in :mod:`repro.core.genetic`), so SPEEDUP additionally depends only on
the group's relative compute speed.  :func:`build_typed_speedup_table`
evaluates the same surface once per type and stacks the results into a
``(K_max + 1, 2, num_types)`` table, normalized by the *slowest* type's
smallest feasible co-located placement — so the slowest type's single GPU has
speedup 1 and faster types score proportionally higher, which is what steers
the GA toward fast nodes.  The GA lookup stays O(1): ``table[K, flag,
type]``.  With a single type at speed 1.0 the typed table collapses exactly
to the seed's ``(K_max + 1, 2)`` table.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .goodput import GoodputModel, batch_size_grid

__all__ = [
    "speedup",
    "build_speedup_table",
    "build_typed_speedup_table",
    "build_surfaces",
    "build_typed_surfaces",
    "best_batch_size_table",
]

#: Column index for placements co-located on a single node.
SINGLE_NODE = 0
#: Column index for placements spanning two or more nodes.
MULTI_NODE = 1


def _reference_goodput(
    model: GoodputModel, tol: float = 0.5, speed: float = 1.0
) -> float:
    """max_m GOODPUT(single process, m): the SPEEDUP denominator.

    If the initial batch size does not fit on a single GPU, the smallest
    feasible co-located placement is used instead, preserving the property
    that the smallest feasible allocation has speedup 1.
    """
    min_gpus = model.limits.min_gpus()
    _, best = model.optimize_batch_size(1, min_gpus, tol=tol, speed=speed)
    return best


def speedup(
    model: GoodputModel,
    num_nodes: int,
    num_gpus: int,
    tol: float = 0.5,
    speed: float = 1.0,
) -> float:
    """SPEEDUP for one placement, via golden-section search (Eqn. 15).

    ``speed`` evaluates both numerator and denominator on a GPU type with
    the given relative compute speed (self-normalized, as on a homogeneous
    cluster of that type).
    """
    if num_gpus == 0:
        return 0.0
    rng = model.limits.range_for(num_gpus)
    if rng is None:
        return 0.0
    _, numer = model.optimize_batch_size(num_nodes, num_gpus, tol=tol, speed=speed)
    denom = _reference_goodput(model, tol=tol, speed=speed)
    if denom <= 0:
        return 0.0
    return numer / denom


def _surface_inputs(
    model: GoodputModel, max_gpus: int, points_per_octave: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The speed-independent pieces of the goodput surface.

    Returns ``(grid, k_col, m_row, feasible, eff)``; computed once and
    shared across GPU types when building typed tables (only the
    throughput evaluation depends on the device speed).
    """
    limits = model.limits
    global_hi = min(limits.max_batch_size, max_gpus * limits.max_local_bsz)
    grid = batch_size_grid(
        limits.init_batch_size, max(global_hi, limits.init_batch_size),
        points_per_octave=points_per_octave,
    )  # (M,)

    ks = np.arange(1, max_gpus + 1, dtype=float)  # (K,)
    k_col = ks[:, None]  # (K, 1)
    m_row = grid[None, :]  # (1, M)

    # Feasibility mask: m0 <= m <= min(max_batch_size, K * max_local_bsz).
    feasible = m_row <= np.minimum(
        limits.max_batch_size, k_col * limits.max_local_bsz
    )

    eff = model.efficiency_model.efficiency(grid)[None, :]  # (1, M)
    return grid, k_col, m_row, feasible, eff


def _surface_at_speed(
    model: GoodputModel,
    max_gpus: int,
    inputs: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    speed: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Goodput surface for one device speed, given precomputed inputs."""
    grid, k_col, m_row, feasible, eff = inputs
    num_ks = k_col.shape[0]
    surfaces = np.zeros((max_gpus + 1, 2), dtype=float)
    argmax_m = np.zeros((max_gpus + 1, 2), dtype=float)
    for flag, nodes in ((SINGLE_NODE, 1), (MULTI_NODE, 2)):
        tput = model.throughput_model.throughput(
            nodes, k_col, m_row, speed
        )  # (K, M)
        good = np.where(feasible, tput * eff, -np.inf)
        best_idx = np.argmax(good, axis=1)  # (K,)
        best_val = good[np.arange(num_ks), best_idx]
        valid = np.isfinite(best_val)
        surfaces[1:, flag] = np.where(valid, best_val, 0.0)
        argmax_m[1:, flag] = np.where(valid, grid[best_idx], 0.0)

    # A placement spanning >= 2 nodes needs >= 2 GPUs.
    surfaces[1, MULTI_NODE] = 0.0
    argmax_m[1, MULTI_NODE] = 0.0
    return surfaces, argmax_m


def _goodput_surface(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int,
    speed: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized max_m GOODPUT over a (K, placement-flag) surface.

    Returns:
        Tuple of two arrays of shape ``(max_gpus + 1, 2)``: the maximal
        goodput and the corresponding argmax batch size.  Row 0 and
        infeasible cells are 0.
    """
    inputs = _surface_inputs(model, max_gpus, points_per_octave)
    return _surface_at_speed(model, max_gpus, inputs, speed)


def build_surfaces(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int = 16,
    speed: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Speedup table plus argmax batch-size table from one surface pass.

    Returns ``(speedup_table, batch_size_table)``, both of shape
    ``(max_gpus + 1, 2)``: the speedup table is exactly
    :func:`build_speedup_table`'s output and the batch-size table exactly
    :func:`best_batch_size_table`'s — they come from a single goodput
    surface evaluation, which is what the
    :class:`~repro.core.surfacecache.SurfaceCache` stores so schedulers and
    agents share one computation per job per round.
    """
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    surfaces, argmax_m = _goodput_surface(model, max_gpus, points_per_octave, speed)
    min_gpus = model.limits.min_gpus()
    denom = surfaces[min_gpus, SINGLE_NODE] if min_gpus <= max_gpus else 0.0
    if denom <= 0:
        return np.zeros_like(surfaces), argmax_m
    return surfaces / denom, argmax_m


def build_speedup_table(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int = 16,
    speed: float = 1.0,
) -> np.ndarray:
    """Speedup lookup table of shape ``(max_gpus + 1, 2)``.

    ``table[k, SINGLE_NODE]`` is the speedup of k GPUs co-located on one
    node; ``table[k, MULTI_NODE]`` of k GPUs spanning two or more nodes.
    ``table[0, :] == 0`` and infeasible cells are 0.

    Args:
        model: The job's goodput model at its current training moment.
        max_gpus: Largest GPU count the table covers (e.g. the job's
            exploration cap).
        points_per_octave: Density of the batch-size grid.
        speed: Relative compute speed of the (single) GPU type; the table is
            self-normalized, so speed only matters through the
            compute/communication balance.  Use
            :func:`build_typed_speedup_table` for mixed-type clusters.
    """
    return build_surfaces(model, max_gpus, points_per_octave, speed)[0]


def build_typed_surfaces(
    model: GoodputModel,
    max_gpus: int,
    type_speeds: Sequence[float],
    points_per_octave: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Typed speedup table plus typed argmax batch-size table.

    Returns ``(speedup_table, batch_size_table)``, both of shape
    ``(max_gpus + 1, 2, num_types)``, from a single per-type surface pass
    (the speedup table exactly matches :func:`build_typed_speedup_table`).
    ``batch_size_table[k, flag, t]`` is the goodput-maximizing total batch
    size for k GPUs of type t.
    """
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    speeds = np.asarray(type_speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size < 1:
        raise ValueError("type_speeds must be a non-empty 1-D sequence")
    if np.any(speeds <= 0):
        raise ValueError("type_speeds must be positive")
    # The batch-size grid, feasibility mask, and efficiency curve are
    # speed-independent: compute them once and share across types.
    inputs = _surface_inputs(model, max_gpus, points_per_octave)
    per_type = [
        _surface_at_speed(model, max_gpus, inputs, float(s)) for s in speeds
    ]
    surfaces = np.stack([s for s, _ in per_type], axis=-1)  # (K + 1, 2, T)
    argmax_m = np.stack([a for _, a in per_type], axis=-1)
    ref_type = int(np.argmin(speeds))
    min_gpus = model.limits.min_gpus()
    denom = (
        surfaces[min_gpus, SINGLE_NODE, ref_type] if min_gpus <= max_gpus else 0.0
    )
    if denom <= 0:
        return np.zeros_like(surfaces), argmax_m
    return surfaces / denom, argmax_m


def build_typed_speedup_table(
    model: GoodputModel,
    max_gpus: int,
    type_speeds: Sequence[float],
    points_per_octave: int = 16,
) -> np.ndarray:
    """Per-GPU-type speedup table of shape ``(max_gpus + 1, 2, num_types)``.

    ``table[k, flag, t]`` is the speedup of k GPUs of type t (co-located for
    ``flag == SINGLE_NODE``, spanning nodes otherwise), normalized by the
    goodput of the smallest feasible co-located placement on the *slowest*
    type.  On a one-type cluster at speed 1.0 ``table[..., 0]`` equals
    :func:`build_speedup_table`'s output exactly.

    Args:
        model: The job's goodput model at its current training moment.
        max_gpus: Largest GPU count the table covers.
        type_speeds: Relative compute speed of each GPU type, in the
            cluster's type order.
        points_per_octave: Density of the batch-size grid.
    """
    return build_typed_surfaces(model, max_gpus, type_speeds, points_per_octave)[0]


def best_batch_size_table(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int = 16,
    speed: float = 1.0,
    type_speeds: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """argmax_m GOODPUT per (K, placement-flag).

    With ``type_speeds=None`` the table has shape ``(max_gpus + 1, 2)`` at
    the single device ``speed``.  Passing ``type_speeds`` builds the typed
    variant of shape ``(max_gpus + 1, 2, num_types)``, one argmax surface
    per GPU type (``speed`` is then ignored) — the table-driven counterpart
    of :func:`build_typed_speedup_table` for O(1) batch-size tuning on
    mixed fleets.
    """
    if type_speeds is not None:
        return build_typed_surfaces(
            model, max_gpus, type_speeds, points_per_octave
        )[1]
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    _, argmax_m = _goodput_surface(model, max_gpus, points_per_octave, speed)
    return argmax_m
