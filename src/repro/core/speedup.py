"""SPEEDUP_j(A_j) (Sec. 4.2, Eqn. 15) and vectorized speedup tables.

    SPEEDUP_j(A_j) = max_m GOODPUT_j(A_j, m) / max_m GOODPUT_j(1, m)

A single allocated GPU always yields a speedup of 1, and speedup grows
sub-linearly with more GPUs.  Because the paper's T_sync model (Eqn. 10)
distinguishes placements only by K (total GPUs) and whether all replicas are
co-located on one node, SPEEDUP depends on the placement A_j only through
(K, min(N, 2)).  We exploit this to precompute per-job speedup *tables* of
shape (K_max + 1, 2) which the genetic algorithm evaluates with O(1) lookups,
and we vectorize the inner max over the batch size on a dense geometric grid
(GOODPUT is unimodal in m, so the grid optimum matches golden-section).

**Typed GPU nodes.**  On a heterogeneous cluster every placement the genetic
algorithm considers lives inside a single GPU-type group (the type-group
repair in :mod:`repro.core.genetic`), so SPEEDUP additionally depends only on
the group's relative compute speed.  :func:`build_typed_speedup_table`
evaluates the same surface once per type and stacks the results into a
``(K_max + 1, 2, num_types)`` table, normalized by the *slowest* type's
smallest feasible co-located placement — so the slowest type's single GPU has
speedup 1 and faster types score proportionally higher, which is what steers
the GA toward fast nodes.  The GA lookup stays O(1): ``table[K, flag,
type]``.  With a single type at speed 1.0 the typed table collapses exactly
to the seed's ``(K_max + 1, 2)`` table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .goodput import GoodputModel, batch_size_grid

__all__ = [
    "speedup",
    "build_speedup_table",
    "build_typed_speedup_table",
    "build_surfaces",
    "build_typed_surfaces",
    "build_surfaces_batch",
    "build_tput_cells",
    "TputCells",
    "best_batch_size_table",
]

#: Column index for placements co-located on a single node.
SINGLE_NODE = 0
#: Column index for placements spanning two or more nodes.
MULTI_NODE = 1


def _reference_goodput(
    model: GoodputModel, tol: float = 0.5, speed: float = 1.0
) -> float:
    """max_m GOODPUT(single process, m): the SPEEDUP denominator.

    If the initial batch size does not fit on a single GPU, the smallest
    feasible co-located placement is used instead, preserving the property
    that the smallest feasible allocation has speedup 1.
    """
    min_gpus = model.limits.min_gpus()
    _, best = model.optimize_batch_size(1, min_gpus, tol=tol, speed=speed)
    return best


def speedup(
    model: GoodputModel,
    num_nodes: int,
    num_gpus: int,
    tol: float = 0.5,
    speed: float = 1.0,
) -> float:
    """SPEEDUP for one placement, via golden-section search (Eqn. 15).

    ``speed`` evaluates both numerator and denominator on a GPU type with
    the given relative compute speed (self-normalized, as on a homogeneous
    cluster of that type).
    """
    if num_gpus == 0:
        return 0.0
    rng = model.limits.range_for(num_gpus)
    if rng is None:
        return 0.0
    _, numer = model.optimize_batch_size(num_nodes, num_gpus, tol=tol, speed=speed)
    denom = _reference_goodput(model, tol=tol, speed=speed)
    if denom <= 0:
        return 0.0
    return numer / denom


def _surface_inputs(
    model: GoodputModel, max_gpus: int, points_per_octave: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The speed-independent pieces of the goodput surface.

    Returns ``(grid, k_col, m_row, feasible, eff)``; computed once and
    shared across GPU types when building typed tables (only the
    throughput evaluation depends on the device speed).
    """
    limits = model.limits
    global_hi = min(limits.max_batch_size, max_gpus * limits.max_local_bsz)
    grid = batch_size_grid(
        limits.init_batch_size, max(global_hi, limits.init_batch_size),
        points_per_octave=points_per_octave,
    )  # (M,)

    ks = np.arange(1, max_gpus + 1, dtype=float)  # (K,)
    k_col = ks[:, None]  # (K, 1)
    m_row = grid[None, :]  # (1, M)

    # Feasibility mask: m0 <= m <= min(max_batch_size, K * max_local_bsz).
    feasible = m_row <= np.minimum(
        limits.max_batch_size, k_col * limits.max_local_bsz
    )

    eff = model.efficiency_model.efficiency(grid)[None, :]  # (1, M)
    return grid, k_col, m_row, feasible, eff


def _surface_at_speed(
    model: GoodputModel,
    max_gpus: int,
    inputs: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    speed: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Goodput surface for one device speed, given precomputed inputs."""
    grid, k_col, m_row, feasible, eff = inputs
    num_ks = k_col.shape[0]
    surfaces = np.zeros((max_gpus + 1, 2), dtype=float)
    argmax_m = np.zeros((max_gpus + 1, 2), dtype=float)
    for flag, nodes in ((SINGLE_NODE, 1), (MULTI_NODE, 2)):
        tput = model.throughput_model.throughput(
            nodes, k_col, m_row, speed
        )  # (K, M)
        good = np.where(feasible, tput * eff, -np.inf)
        best_idx = np.argmax(good, axis=1)  # (K,)
        best_val = good[np.arange(num_ks), best_idx]
        valid = np.isfinite(best_val)
        surfaces[1:, flag] = np.where(valid, best_val, 0.0)
        argmax_m[1:, flag] = np.where(valid, grid[best_idx], 0.0)

    # A placement spanning >= 2 nodes needs >= 2 GPUs.
    surfaces[1, MULTI_NODE] = 0.0
    argmax_m[1, MULTI_NODE] = 0.0
    return surfaces, argmax_m


def _goodput_surface(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int,
    speed: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized max_m GOODPUT over a (K, placement-flag) surface.

    Returns:
        Tuple of two arrays of shape ``(max_gpus + 1, 2)``: the maximal
        goodput and the corresponding argmax batch size.  Row 0 and
        infeasible cells are 0.
    """
    inputs = _surface_inputs(model, max_gpus, points_per_octave)
    return _surface_at_speed(model, max_gpus, inputs, speed)


def build_surfaces(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int = 16,
    speed: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Speedup table plus argmax batch-size table from one surface pass.

    Returns ``(speedup_table, batch_size_table)``, both of shape
    ``(max_gpus + 1, 2)``: the speedup table is exactly
    :func:`build_speedup_table`'s output and the batch-size table exactly
    :func:`best_batch_size_table`'s — they come from a single goodput
    surface evaluation, which is what the
    :class:`~repro.core.surfacecache.SurfaceCache` stores so schedulers and
    agents share one computation per job per round.
    """
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    surfaces, argmax_m = _goodput_surface(model, max_gpus, points_per_octave, speed)
    min_gpus = model.limits.min_gpus()
    denom = surfaces[min_gpus, SINGLE_NODE] if min_gpus <= max_gpus else 0.0
    if denom <= 0:
        return np.zeros_like(surfaces), argmax_m
    return surfaces / denom, argmax_m


def build_speedup_table(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int = 16,
    speed: float = 1.0,
) -> np.ndarray:
    """Speedup lookup table of shape ``(max_gpus + 1, 2)``.

    ``table[k, SINGLE_NODE]`` is the speedup of k GPUs co-located on one
    node; ``table[k, MULTI_NODE]`` of k GPUs spanning two or more nodes.
    ``table[0, :] == 0`` and infeasible cells are 0.

    Args:
        model: The job's goodput model at its current training moment.
        max_gpus: Largest GPU count the table covers (e.g. the job's
            exploration cap).
        points_per_octave: Density of the batch-size grid.
        speed: Relative compute speed of the (single) GPU type; the table is
            self-normalized, so speed only matters through the
            compute/communication balance.  Use
            :func:`build_typed_speedup_table` for mixed-type clusters.
    """
    return build_surfaces(model, max_gpus, points_per_octave, speed)[0]


def build_typed_surfaces(
    model: GoodputModel,
    max_gpus: int,
    type_speeds: Sequence[float],
    points_per_octave: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Typed speedup table plus typed argmax batch-size table.

    Returns ``(speedup_table, batch_size_table)``, both of shape
    ``(max_gpus + 1, 2, num_types)``, from a single per-type surface pass
    (the speedup table exactly matches :func:`build_typed_speedup_table`).
    ``batch_size_table[k, flag, t]`` is the goodput-maximizing total batch
    size for k GPUs of type t.
    """
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    speeds = np.asarray(type_speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size < 1:
        raise ValueError("type_speeds must be a non-empty 1-D sequence")
    if np.any(speeds <= 0):
        raise ValueError("type_speeds must be positive")
    # The batch-size grid, feasibility mask, and efficiency curve are
    # speed-independent: compute them once and share across types.
    inputs = _surface_inputs(model, max_gpus, points_per_octave)
    per_type = [
        _surface_at_speed(model, max_gpus, inputs, float(s)) for s in speeds
    ]
    surfaces = np.stack([s for s, _ in per_type], axis=-1)  # (K + 1, 2, T)
    argmax_m = np.stack([a for _, a in per_type], axis=-1)
    ref_type = int(np.argmin(speeds))
    min_gpus = model.limits.min_gpus()
    denom = (
        surfaces[min_gpus, SINGLE_NODE, ref_type] if min_gpus <= max_gpus else 0.0
    )
    if denom <= 0:
        return np.zeros_like(surfaces), argmax_m
    return surfaces / denom, argmax_m


def build_typed_speedup_table(
    model: GoodputModel,
    max_gpus: int,
    type_speeds: Sequence[float],
    points_per_octave: int = 16,
) -> np.ndarray:
    """Per-GPU-type speedup table of shape ``(max_gpus + 1, 2, num_types)``.

    ``table[k, flag, t]`` is the speedup of k GPUs of type t (co-located for
    ``flag == SINGLE_NODE``, spanning nodes otherwise), normalized by the
    goodput of the smallest feasible co-located placement on the *slowest*
    type.  On a one-type cluster at speed 1.0 ``table[..., 0]`` equals
    :func:`build_speedup_table`'s output exactly.

    Args:
        model: The job's goodput model at its current training moment.
        max_gpus: Largest GPU count the table covers.
        type_speeds: Relative compute speed of each GPU type, in the
            cluster's type order.
        points_per_octave: Density of the batch-size grid.
    """
    return build_typed_surfaces(model, max_gpus, type_speeds, points_per_octave)[0]


class TputCells:
    """Phi-independent throughput cells for one job's goodput surface.

    The expensive part of a speedup-table build — evaluating THROUGHPUT
    (Eqns. 9-11) on every feasible (k, placement-flag, type, batch-size)
    grid cell — does not depend on the gradient noise scale phi_t, which
    is the *only* part of a job's report that drifts on every simulator
    tick.  Caching these cells (keyed on theta_sys + limits + table shape,
    see ``SurfaceCache.cells_key``) turns the per-round table rebuild into
    one efficiency multiply plus a segmented argmax; a full surface pass
    is only paid again when theta_sys actually re-fits.

    Attributes:
        tput: ``(2, T, C)`` throughput at every feasible cell.
        m_cells: ``(C,)`` batch size of each cell (ascending per row).
        counts: ``(cap,)`` feasible-cell count per k row (k = 1..cap).
    """

    __slots__ = ("tput", "m_cells", "counts")

    def __init__(self, tput: np.ndarray, m_cells: np.ndarray, counts: np.ndarray):
        self.tput = tput
        self.m_cells = m_cells
        self.counts = counts


def _check_batch_args(models, caps, type_speeds):
    num_jobs = len(models)
    caps = np.asarray(caps, dtype=np.int64)
    if caps.shape != (num_jobs,):
        raise ValueError("caps must align with models")
    if num_jobs and caps.min() < 1:
        raise ValueError("caps must be >= 1")
    speeds = np.asarray(type_speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size < 1 or np.any(speeds <= 0):
        raise ValueError("type_speeds must be a non-empty positive 1-D sequence")
    return caps, speeds


def build_tput_cells(
    models: Sequence[GoodputModel],
    caps: Sequence[int],
    points_per_octave: int = 16,
    type_speeds: Sequence[float] = (1.0,),
) -> List[TputCells]:
    """Throughput cells for many jobs in one flattened ragged pass.

    Evaluates Eqns. 9-11 over every *feasible* grid cell of every job —
    one flattened row per (job, k) pair, one ragged cell axis instead of a
    padded rectangle — so the whole round's surface evaluation is a
    handful of large array operations.  The result is phi-independent (see
    :class:`TputCells`); :func:`build_surfaces_batch` folds in each job's
    current efficiency curve.
    """
    num_jobs = len(models)
    caps, speeds = _check_batch_args(models, caps, type_speeds)
    if num_jobs == 0:
        return []

    # Vectorized replica of batch_size_grid for every job at once: the
    # same geometric grid (10 ** linspace of log10 endpoints, exact
    # endpoints patched in), padded to the longest grid.
    lo = np.array([model.limits.init_batch_size for model in models])
    max_bs_job = np.array([model.limits.max_batch_size for model in models])
    max_local_job = np.array([model.limits.max_local_bsz for model in models])
    hi_grid = np.maximum(np.minimum(max_bs_job, caps * max_local_job), lo)
    with np.errstate(divide="ignore", invalid="ignore"):
        octaves = np.log2(hi_grid / lo)
    num_points = np.where(
        hi_grid == lo,
        1,
        np.maximum(2, np.ceil(octaves * points_per_octave).astype(np.int64) + 1),
    )
    m_max = int(num_points.max())
    m_idx = np.arange(m_max, dtype=float)
    log_lo = np.log10(lo)
    step = (np.log10(hi_grid) - log_lo) / np.maximum(num_points - 1, 1)
    m = np.power(10.0, m_idx[None, :] * step[:, None] + log_lo[:, None])
    m[:, 0] = lo
    m[np.arange(num_jobs), num_points - 1] = hi_grid
    on_grid = m_idx[None, :] < num_points[:, None]

    # One flattened row per (job, k) pair with k in [1, cap_j] — no K
    # padding, only the (small) M padding to the longest grid.
    offsets = np.concatenate([[0], np.cumsum(caps)[:-1]])
    num_rows = int(caps.sum())
    job_of_row = np.repeat(np.arange(num_jobs), caps)
    k_row = (np.arange(num_rows) - np.repeat(offsets, caps) + 1).astype(float)

    params = [model.throughput_model.params for model in models]

    def per_row(values) -> np.ndarray:
        return np.repeat(np.asarray(values, dtype=float), caps)

    alpha_grad = per_row([p.alpha_grad for p in params])
    beta_grad = per_row([p.beta_grad for p in params])
    alpha_sl = per_row([p.alpha_sync_local for p in params])
    beta_sl = per_row([p.beta_sync_local for p in params])
    alpha_sn = per_row([p.alpha_sync_node for p in params])
    beta_sn = per_row([p.beta_sync_node for p in params])
    gamma = per_row([p.gamma for p in params])
    max_bs = max_bs_job[job_of_row]
    max_local = max_local_job[job_of_row]

    m_rows = m[job_of_row]  # (R, M)

    # Restrict all evaluation to the *feasible cells*: grid points with
    # m <= min(max_batch_size, k * max_local_bsz), flattened into one
    # ragged axis with per-row segments.  The grid is ascending, so each
    # row's feasible cells are a prefix; infeasible cells (typically >half
    # of the padded (R, M) rectangle) are never touched, and the -inf
    # masking plus argmax of the per-job builders turns into segment
    # reductions over exactly the cells they would have kept.
    feasible = on_grid[job_of_row] & (
        m_rows <= np.minimum(max_bs, k_row * max_local)[:, None]
    )  # (R, M)
    counts = feasible.sum(axis=-1)  # (R,)
    cell_row = np.nonzero(feasible)[0]  # (C,) row of each cell, row-major
    m_cells = m_rows[feasible]  # (C,) ascending within each row segment

    # Eqn. 9 at reference speed; divided per type below.
    t_grad_ref = (
        alpha_grad[cell_row] + beta_grad[cell_row] * m_cells / k_row[cell_row]
    )  # (C,)
    t_grad = t_grad_ref[None, :] / speeds[:, None]  # (T, C)

    # Eqn. 10 per placement flag (single/multi node); 0 for single-GPU rows.
    extra = np.maximum(k_row - 2.0, 0.0)
    single_gpu = k_row <= 1.0
    local = np.where(single_gpu, 0.0, alpha_sl + beta_sl * extra)
    remote = np.where(single_gpu, 0.0, alpha_sn + beta_sn * extra)
    t_sync = np.stack([local, remote])[:, cell_row][:, None, :]  # (2, 1, C)

    gamma_c = gamma[cell_row]
    # Eqn. 11: (tg^g + ts^g)^(1/g), factored by the max term for stability
    # (same formulation as ThroughputModel.t_iter), with in-place ufuncs to
    # keep the (2, T, C) temporary count down.
    hi = np.maximum(t_grad[None], t_sync)  # (2, T, C)
    lo_t = np.minimum(t_grad[None], t_sync)
    with np.errstate(divide="ignore", invalid="ignore"):
        # lo == 0 wherever hi == 0 (both times are non-negative), so adding
        # the hi == 0 indicator to the denominator yields the same guarded
        # ratio as the per-job builders' where(hi > 0, lo / hi, 0) — hi + 0.0
        # is exact for hi > 0 — at a fraction of np.where's cost.
        work = np.divide(lo_t, hi + (hi == 0.0), out=lo_t)
        np.power(work, gamma_c, out=work)
        work += 1.0
        np.power(work, 1.0 / gamma_c, out=work)
        t_iter = np.multiply(hi, work, out=work)
        tput = np.divide(m_cells, t_iter, out=t_iter)  # (2, T, C)

    # Split per job (views into the shared base arrays — no copies).
    out: List[TputCells] = []
    cell_starts = np.concatenate([[0], np.cumsum(counts)])
    for j, cap in enumerate(caps):
        row_lo = int(offsets[j])
        row_hi = row_lo + int(cap)
        a, b = int(cell_starts[row_lo]), int(cell_starts[row_hi])
        out.append(
            TputCells(tput[:, :, a:b], m_cells[a:b], counts[row_lo:row_hi])
        )
    return out


def build_surfaces_batch(
    models: Sequence[GoodputModel],
    caps: Sequence[int],
    points_per_octave: int = 16,
    type_speeds: Sequence[float] = (1.0,),
    squeeze: bool = True,
    cells: Optional[Sequence[TputCells]] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Speedup + argmax batch-size tables for many jobs in one ragged pass.

    The per-job surface builders (:func:`build_surfaces` /
    :func:`build_typed_surfaces`) are overhead-bound: each spends most of
    its time in numpy dispatch on small ``(K, M)`` arrays.  This batches
    the whole scheduling round's table builds into a handful of array
    operations over one ragged feasible-cell axis — the hot path of the v2
    GA engine's problem construction.  Passing previously built ``cells``
    (see :func:`build_tput_cells`) skips the throughput evaluation
    entirely and only folds in each job's current efficiency curve — the
    steady-state round cost while theta_sys is stable.

    Per job the *same* grid, feasibility mask, and normalization as the
    per-job builders are applied, so the returned tables match
    :func:`build_surfaces` (``squeeze=True`` with one type) or
    :func:`build_typed_surfaces` elementwise up to pow-kernel rounding
    (``gamma`` enters as an array exponent here).  The batched path
    therefore backs the v2 engine's benchmarked-equivalent decision
    stream, while the legacy engine keeps the per-job builders
    bit-for-bit.

    Args:
        models: One goodput model per job.
        caps: Per-job maximum GPU count (table row count - 1), each >= 1.
        points_per_octave: Batch-size grid density (shared).
        type_speeds: Relative compute speed per GPU type; tables gain a
            trailing type axis when more than one (or ``squeeze=False``).
        squeeze: With a single type, drop the trailing type axis so the
            tables have the flat ``(cap + 1, 2)`` shape.
        cells: Optional per-job throughput cells to reuse (must have been
            built with the same caps/grid/type speeds).

    Returns:
        List of ``(speedup_table, batch_size_table)`` pairs, one per job.
        All tables are views into two shared backing arrays.
    """
    num_jobs = len(models)
    caps, speeds = _check_batch_args(models, caps, type_speeds)
    if num_jobs == 0:
        return []
    num_types = speeds.size
    flat = squeeze and num_types == 1
    ref_type = int(np.argmin(speeds))
    if cells is None:
        cells = build_tput_cells(models, caps, points_per_octave, type_speeds)
    if len(cells) != num_jobs:
        raise ValueError("cells must align with models")

    offsets = np.concatenate([[0], np.cumsum(caps)[:-1]])
    num_rows = int(caps.sum())
    job_of_row = np.repeat(np.arange(num_jobs), caps)

    tput = np.concatenate([c.tput for c in cells], axis=-1)  # (2, T, C)
    m_cells = np.concatenate([c.m_cells for c in cells])  # (C,)
    counts = np.concatenate([c.counts for c in cells])  # (R,)
    cells_per_job = np.array([c.m_cells.size for c in cells], dtype=np.int64)
    cell_job = np.repeat(np.arange(num_jobs), cells_per_job)

    # EFFICIENCY_t(m) (Eqn. 7) at each cell, from each job's current phi.
    phi_job = np.array(
        [model.efficiency_model.grad_noise_scale for model in models]
    )
    m0_job = np.array(
        [model.efficiency_model.init_batch_size for model in models]
    )
    phi_c = phi_job[cell_job]
    eff = (phi_c + m0_job[cell_job]) / (phi_c + m_cells)  # (C,)
    goodput = tput * eff  # (2, T, C)

    # Segmented max/argmax over each row's cells (rows with no feasible
    # cell — min feasible m needs more than k GPUs — stay zero, exactly
    # the per-job builders' all-(-inf) branch).
    best_val = np.zeros((2, num_types, num_rows), dtype=float)
    best_m = np.zeros((2, num_types, num_rows), dtype=float)
    rows_nz = counts > 0
    num_cells = int(m_cells.size)
    if num_cells:
        starts_all = np.concatenate([[0], np.cumsum(counts)[:-1]])
        starts_nz = starts_all[rows_nz]
        seg_max = np.maximum.reduceat(goodput, starts_nz, axis=-1)
        num_nz = int(rows_nz.sum())
        seg_of_cell = np.repeat(np.arange(num_nz), counts[rows_nz])
        # First cell attaining the segment max == np.argmax's tie-break
        # (cells are ascending in m within a segment).
        is_max = goodput == seg_max[:, :, seg_of_cell]
        cand = np.where(
            is_max,
            np.arange(num_cells, dtype=np.int32)[None, None, :],
            np.int32(num_cells),
        )
        seg_arg = np.minimum.reduceat(cand, starts_nz, axis=-1)
        best_val[:, :, rows_nz] = seg_max
        best_m[:, :, rows_nz] = m_cells[seg_arg]

    # A placement spanning >= 2 nodes needs >= 2 GPUs: zero the k == 1
    # multi-node cells (row offsets[j] is each job's k == 1 row).
    best_val[MULTI_NODE, :, offsets] = 0.0
    best_m[MULTI_NODE, :, offsets] = 0.0

    # Per-job normalization by the smallest feasible co-located placement
    # on the reference (slowest) type, batched over jobs.
    min_gpus_job = np.array(
        [model.limits.min_gpus() for model in models], dtype=np.int64
    )
    has_ref = min_gpus_job <= caps
    denom_job = np.zeros(num_jobs, dtype=float)
    ref_rows = offsets + np.minimum(min_gpus_job, caps) - 1
    denom_job[has_ref] = best_val[SINGLE_NODE, ref_type, ref_rows[has_ref]]
    # Jobs whose denominator degenerates get an all-zero speedup table
    # (the per-job builders' behavior); dividing by 1 keeps them zero only
    # after masking, so zero the rows explicitly.
    pos = denom_job > 0
    denom_rows = np.where(pos, denom_job, 1.0)[job_of_row]
    sp_val = (best_val / denom_rows) * pos[job_of_row]

    # Assemble every job's (cap + 1, 2[, T]) table pair as views into two
    # contiguous backing arrays — one scatter for all jobs instead of a
    # per-job copy loop.  Job j's block spans rows offsets[j] + j ..
    # offsets[j] + j + cap_j; its first row is the all-zero k == 0 row.
    sp_full = np.zeros((num_rows + num_jobs, 2, num_types), dtype=float)
    bm_full = np.zeros((num_rows + num_jobs, 2, num_types), dtype=float)
    target = np.arange(num_rows) + job_of_row + 1
    sp_full[target] = sp_val.transpose(2, 0, 1)
    bm_full[target] = best_m.transpose(2, 0, 1)

    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for j, cap in enumerate(caps):
        start = int(offsets[j]) + j
        block = slice(start, start + int(cap) + 1)
        if flat:
            out.append((sp_full[block, :, 0], bm_full[block, :, 0]))
        else:
            out.append((sp_full[block], bm_full[block]))
    return out


def best_batch_size_table(
    model: GoodputModel,
    max_gpus: int,
    points_per_octave: int = 16,
    speed: float = 1.0,
    type_speeds: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """argmax_m GOODPUT per (K, placement-flag).

    With ``type_speeds=None`` the table has shape ``(max_gpus + 1, 2)`` at
    the single device ``speed``.  Passing ``type_speeds`` builds the typed
    variant of shape ``(max_gpus + 1, 2, num_types)``, one argmax surface
    per GPU type (``speed`` is then ignored) — the table-driven counterpart
    of :func:`build_typed_speedup_table` for O(1) batch-size tuning on
    mixed fleets.
    """
    if type_speeds is not None:
        return build_typed_surfaces(
            model, max_gpus, type_speeds, points_per_octave
        )[1]
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    _, argmax_m = _goodput_surface(model, max_gpus, points_per_octave, speed)
    return argmax_m
