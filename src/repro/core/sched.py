"""PolluxSched: cluster-wide optimization (Sec. 4.2).

At a fixed interval, PolluxSched re-optimizes the allocation matrix for all
jobs in the cluster by running the genetic algorithm on the fitness function

    FITNESS(A) = sum_j w_j * SPEEDUP_j(A_j) / sum_j w_j     (Eqn. 14)

where SPEEDUP_j (Eqn. 15) is evaluated from each job's reported goodput
model, w_j is the GPU-time-decayed job weight (Eqn. 16), a RESTART_PENALTY is
charged for every running job whose allocation changes, the interference
avoidance constraint forbids two distributed jobs from sharing a node, and
each job's allocation is capped at twice its lifetime-maximum GPU count
(Sec. 4.1's exploration rule).  The GA population is preserved between
scheduling rounds to bootstrap the next optimization (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.spec import ClusterSpec
from .agent import AgentReport
from .genetic import AllocationProblem, GAConfig, GeneticOptimizer, JobGAInfo
from .speedup import build_speedup_table, build_typed_speedup_table
from .surfacecache import SurfaceCache

__all__ = ["PolluxSchedConfig", "SchedJobInfo", "job_weight", "PolluxSched"]


@dataclass(frozen=True)
class PolluxSchedConfig:
    """Operator-facing configuration of PolluxSched (Sec. 5.1 defaults).

    The two ``surface_*`` knobs control the shared
    :class:`~repro.core.surfacecache.SurfaceCache`:
    ``surface_cache_size = 0`` disables caching entirely (every round
    rebuilds every table, the pre-cache behavior); ``surface_phi_tol``
    quantizes phi in the cache key for opt-in cross-round reuse — at the
    default 0.0 the cache is keyed on exact values and scheduling decisions
    are bit-for-bit identical to the uncached path.
    """

    restart_penalty: float = 0.25
    forbid_interference: bool = True
    gputime_thres: float = 4.0 * 3600.0  # 4 GPU-hours, in GPU-seconds
    weight_decay: float = 0.5  # lambda in Eqn. 16
    ga: GAConfig = field(default_factory=GAConfig)
    table_points_per_octave: int = 16
    surface_cache_size: int = 512
    surface_phi_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.restart_penalty < 0:
            raise ValueError("restart_penalty must be non-negative")
        if self.gputime_thres <= 0:
            raise ValueError("gputime_thres must be positive")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.surface_cache_size < 0:
            raise ValueError("surface_cache_size must be non-negative")
        if self.surface_phi_tol < 0:
            raise ValueError("surface_phi_tol must be non-negative")


@dataclass
class SchedJobInfo:
    """Snapshot of one job as seen by PolluxSched at a scheduling round."""

    job_id: str
    report: AgentReport
    current_alloc: np.ndarray
    gputime: float  # total GPU-seconds consumed so far

    def __post_init__(self) -> None:
        self.current_alloc = np.asarray(self.current_alloc, dtype=np.int64)
        if self.gputime < 0:
            raise ValueError("gputime must be non-negative")


def job_weight(gputime: float, gputime_thres: float, decay: float) -> float:
    """w_j = min(1, GPUTIME_THRES / GPUTIME(j)) ** lambda (Eqn. 16)."""
    if gputime_thres <= 0:
        raise ValueError("gputime_thres must be positive")
    if gputime <= gputime_thres:
        return 1.0
    return float((gputime_thres / gputime) ** decay)


class PolluxSched:
    """Cluster-wide goodput-maximizing scheduler."""

    def __init__(
        self,
        cluster: ClusterSpec,
        config: Optional[PolluxSchedConfig] = None,
        seed: int = 0,
        surface_cache: Optional[SurfaceCache] = None,
    ):
        self.cluster = cluster
        self.config = config if config is not None else PolluxSchedConfig()
        self._rng = np.random.default_rng(seed)
        self._population: Optional[np.ndarray] = None
        self._population_job_ids: List[str] = []
        self.rounds = 0
        #: UTILITY(A) (Eqn. 17) of the last optimized allocation matrix.
        self.last_utility = 0.0
        #: Shared speedup/batch-size surface cache (None = caching off).  An
        #: explicitly passed cache (e.g. from the scheduler owning this
        #: probe instance) wins over the config's own; see surfacecache.py.
        if surface_cache is not None:
            self.surface_cache: Optional[SurfaceCache] = surface_cache
        elif self.config.surface_cache_size > 0:
            self.surface_cache = SurfaceCache(
                maxsize=self.config.surface_cache_size,
                phi_tol=self.config.surface_phi_tol,
            )
        else:
            self.surface_cache = None

    # ------------------------------------------------------------------

    def set_cluster(self, cluster: ClusterSpec) -> None:
        """Replace the cluster (cloud auto-scaling); resets the GA bootstrap
        population if the node layout (count, per-node GPUs, or GPU types)
        changed — stale populations are meaningless across a type-set
        change."""
        if cluster.nodes != self.cluster.nodes:
            self._population = None
            self._population_job_ids = []
        self.cluster = cluster

    def _bootstrap_population(self, job_ids: Sequence[str]) -> Optional[np.ndarray]:
        """Re-index the saved population for this round's job set."""
        if self._population is None or self._population.size == 0:
            return None
        old_index = {jid: i for i, jid in enumerate(self._population_job_ids)}
        pop_size = self._population.shape[0]
        num_nodes = self.cluster.num_nodes
        out = np.zeros((pop_size, len(job_ids), num_nodes), dtype=np.int64)
        for new_j, jid in enumerate(job_ids):
            old_j = old_index.get(jid)
            if old_j is not None:
                out[:, new_j, :] = self._population[:, old_j, :]
        return out

    def build_problem(self, jobs: Sequence[SchedJobInfo]) -> AllocationProblem:
        """Construct the GA allocation problem for one scheduling round.

        Speedup tables come from the shared :class:`SurfaceCache` when one
        is configured, so ``optimize``, ``utility``, and autoscaler probes
        that see the same reports within a tick build each job's table at
        most once; with caching disabled every table is rebuilt in place
        (bit-identical values either way).
        """
        cfg = self.config
        cache = self.surface_cache
        total_gpus = self.cluster.total_gpus
        single_type = self.cluster.is_single_type
        type_speeds = self.cluster.type_speeds()
        ga_jobs: List[JobGAInfo] = []
        for job in jobs:
            cap = job.report.exploration_cap(total_gpus)
            if single_type:
                # Homogeneous fast path: the seed's (K+1, 2) table, at the
                # cluster's (single) device speed — 1.0 on the reference T4.
                if cache is not None:
                    table, _ = cache.get_flat(
                        job.report,
                        cap,
                        cfg.table_points_per_octave,
                        float(type_speeds[0]),
                    )
                else:
                    table = build_speedup_table(
                        job.report.goodput_model(),
                        max_gpus=cap,
                        points_per_octave=cfg.table_points_per_octave,
                        speed=float(type_speeds[0]),
                    )
            else:
                if cache is not None:
                    table, _ = cache.get_typed(
                        job.report,
                        cap,
                        cfg.table_points_per_octave,
                        type_speeds,
                    )
                else:
                    table = build_typed_speedup_table(
                        job.report.goodput_model(),
                        max_gpus=cap,
                        type_speeds=type_speeds,
                        points_per_octave=cfg.table_points_per_octave,
                    )
            weight = job_weight(job.gputime, cfg.gputime_thres, cfg.weight_decay)
            ga_jobs.append(
                JobGAInfo(
                    speedup_table=table,
                    weight=weight,
                    max_gpus=cap,
                    current_alloc=job.current_alloc,
                    running=bool(job.current_alloc.sum() > 0),
                )
            )
        return AllocationProblem(
            self.cluster,
            ga_jobs,
            restart_penalty=cfg.restart_penalty,
            forbid_interference=cfg.forbid_interference,
        )

    def optimize(
        self, jobs: Sequence[SchedJobInfo]
    ) -> Dict[str, np.ndarray]:
        """Run one scheduling round; return job_id -> allocation vector."""
        self.rounds += 1
        job_ids = [job.job_id for job in jobs]
        if len(set(job_ids)) != len(job_ids):
            raise ValueError("duplicate job ids in scheduling round")
        if not jobs:
            self._population = None
            self._population_job_ids = []
            self.last_utility = 0.0
            return {}

        problem = self.build_problem(jobs)
        optimizer = GeneticOptimizer(problem, self.config.ga, rng=self._rng)
        initial = self._bootstrap_population(job_ids)
        best, _, population = optimizer.run(initial=initial)

        self._population = population
        self._population_job_ids = list(job_ids)
        self.last_utility = problem.utility(best)
        return {jid: best[j].copy() for j, jid in enumerate(job_ids)}

    def utility(self, jobs: Sequence[SchedJobInfo], matrix: np.ndarray) -> float:
        """UTILITY(A) of an allocation matrix for these jobs (Eqn. 17)."""
        problem = self.build_problem(jobs)
        return problem.utility(matrix)
