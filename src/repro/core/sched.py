"""PolluxSched: cluster-wide optimization (Sec. 4.2).

At a fixed interval, PolluxSched re-optimizes the allocation matrix for all
jobs in the cluster by running the genetic algorithm on the fitness function

    FITNESS(A) = sum_j w_j * SPEEDUP_j(A_j) / sum_j w_j     (Eqn. 14)

where SPEEDUP_j (Eqn. 15) is evaluated from each job's reported goodput
model, w_j is the GPU-time-decayed job weight (Eqn. 16), a RESTART_PENALTY is
charged for every running job whose allocation changes, the interference
avoidance constraint forbids two distributed jobs from sharing a node, and
each job's allocation is capped at twice its lifetime-maximum GPU count
(Sec. 4.1's exploration rule).  The GA population is preserved between
scheduling rounds to bootstrap the next optimization (Sec. 4.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.spec import ClusterSpec
from .agent import AgentReport
from .genetic import (
    GA_ENGINES,
    AllocationProblem,
    GAConfig,
    JobGAInfo,
    make_optimizer,
)
from .speedup import (
    TputCells,
    build_speedup_table,
    build_surfaces_batch,
    build_tput_cells,
    build_typed_speedup_table,
)
from .surfacecache import SurfaceCache

__all__ = ["PolluxSchedConfig", "SchedJobInfo", "job_weight", "PolluxSched"]

#: Surface-cache slots reserved per active job (see ``SurfaceCache.
#: ensure_capacity``): one slot per distinct (exploration cap, phi) pair a
#: job's tables are built at within a round — the round itself plus the
#: autoscaler's binary-search probes (~log2(max_nodes) cap variants) — with
#: headroom for cross-round reuse of unchanged reports.
_CACHE_SLOTS_PER_JOB = 16


@dataclass(frozen=True)
class PolluxSchedConfig:
    """Operator-facing configuration of PolluxSched (Sec. 5.1 defaults).

    The two ``surface_*`` knobs control the shared
    :class:`~repro.core.surfacecache.SurfaceCache`:
    ``surface_cache_size = 0`` disables caching entirely (every round
    rebuilds every table, the pre-cache behavior); ``surface_phi_tol``
    quantizes phi in the cache key for opt-in cross-round reuse — at the
    default 0.0 the cache is keyed on exact values and scheduling decisions
    are bit-for-bit identical to the uncached path.  ``surface_cache_size``
    is a *floor*: each round the cache is grown to at least
    ``_CACHE_SLOTS_PER_JOB`` entries per active job, so large job counts
    cannot thrash the LRU (growing never changes decisions).

    ``ga_engine`` selects the genetic-algorithm engine: ``"v2"`` (default)
    is the fully vectorized engine with warm-started rounds and batched
    table builds; ``"legacy"`` is the original engine whose decision stream
    is pinned bit-for-bit (see :mod:`repro.core.genetic`).  The two produce
    different but benchmarked-equivalent schedules
    (``benchmarks/bench_ga_engines.py``).

    ``cells_path`` points at a phi-free ``TputCells`` snapshot written by
    :meth:`PolluxSched.save_cells` (``SurfaceCache.to_file``); when set,
    a fresh scheduler pre-warms its surface cache from it, closing most of
    the v2 cold-start gap across restarts.  A missing file is ignored (the
    first run has nothing persisted yet).

    ``incremental`` (v2 only, default off) enables dirty-set rounds: a
    round whose inputs are unchanged — same job set, same
    ``theta_fingerprint()`` per job, same exploration caps, allocations
    still exactly what the previous round assigned — skips the GA entirely
    and replays the previous allocations; a round where only *some* jobs
    changed restricts mutation to those jobs' rows while carrying the rest
    from the warm population.  phi drift alone deliberately does not dirty
    a job (the skip trades bounded goodput-model staleness for round
    cost, like ``surface_phi_tol``); ``incremental_refresh_every`` forces
    an unrestricted round every that-many rounds (0 = never) to bound the
    staleness.  Departures, cluster resizes, and external allocation
    changes always force a full round.
    """

    restart_penalty: float = 0.25
    forbid_interference: bool = True
    gputime_thres: float = 4.0 * 3600.0  # 4 GPU-hours, in GPU-seconds
    weight_decay: float = 0.5  # lambda in Eqn. 16
    ga: GAConfig = field(default_factory=GAConfig)
    ga_engine: str = "v2"
    table_points_per_octave: int = 16
    surface_cache_size: int = 512
    surface_phi_tol: float = 0.0
    cells_path: Optional[str] = None
    incremental: bool = False
    incremental_refresh_every: int = 10

    def __post_init__(self) -> None:
        if self.restart_penalty < 0:
            raise ValueError("restart_penalty must be non-negative")
        if self.gputime_thres <= 0:
            raise ValueError("gputime_thres must be positive")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.ga_engine not in GA_ENGINES:
            raise ValueError(
                f"ga_engine must be one of {sorted(GA_ENGINES)}, got "
                f"{self.ga_engine!r}"
            )
        if self.surface_cache_size < 0:
            raise ValueError("surface_cache_size must be non-negative")
        if self.surface_phi_tol < 0:
            raise ValueError("surface_phi_tol must be non-negative")
        if self.incremental and self.ga_engine == "legacy":
            raise ValueError(
                "incremental rounds require the v2 GA engine (legacy is "
                "bit-pinned and has no mutation masking)"
            )
        if self.incremental_refresh_every < 0:
            raise ValueError("incremental_refresh_every must be non-negative")


@dataclass
class SchedJobInfo:
    """Snapshot of one job as seen by PolluxSched at a scheduling round."""

    job_id: str
    report: AgentReport
    current_alloc: np.ndarray
    gputime: float  # total GPU-seconds consumed so far

    def __post_init__(self) -> None:
        self.current_alloc = np.asarray(self.current_alloc, dtype=np.int64)
        if self.gputime < 0:
            raise ValueError("gputime must be non-negative")


def job_weight(gputime: float, gputime_thres: float, decay: float) -> float:
    """w_j = min(1, GPUTIME_THRES / GPUTIME(j)) ** lambda (Eqn. 16)."""
    if gputime_thres <= 0:
        raise ValueError("gputime_thres must be positive")
    if gputime <= gputime_thres:
        return 1.0
    return float((gputime_thres / gputime) ** decay)


class PolluxSched:
    """Cluster-wide goodput-maximizing scheduler."""

    def __init__(
        self,
        cluster: ClusterSpec,
        config: Optional[PolluxSchedConfig] = None,
        seed: int = 0,
        surface_cache: Optional[SurfaceCache] = None,
    ):
        self.cluster = cluster
        self.config = config if config is not None else PolluxSchedConfig()
        self._rng = np.random.default_rng(seed)
        self._population: Optional[np.ndarray] = None
        self._population_job_ids: List[str] = []
        #: Set by :meth:`set_cluster` on a node-layout change; the next v2
        #: round then runs its full generation budget (patience disabled)
        #: so allocations are re-optimized for the new layout instead of
        #: early-exiting on a plateau of the stale warm-started population.
        self._resized_since_round = False
        self.rounds = 0
        #: UTILITY(A) (Eqn. 17) of the last optimized allocation matrix.
        self.last_utility = 0.0
        #: Wall-clock per phase of the last ``optimize`` round, in ms:
        #: ``table_ms`` (speedup-table builds), the GA engine's
        #: ``repair_ms``/``fitness_ms``/``select_ms``/``mutate_ms``, and
        #: ``total_ms``.  Lets perf regressions localize to a phase
        #: (recorded by ``benchmarks/bench_perf.py``).
        self.last_phase_timings: Dict[str, float] = {}
        #: Shared speedup/batch-size surface cache (None = caching off).  An
        #: explicitly passed cache (e.g. from the scheduler owning this
        #: probe instance) wins over the config's own; see surfacecache.py.
        if surface_cache is not None:
            self.surface_cache: Optional[SurfaceCache] = surface_cache
        elif self.config.surface_cache_size > 0:
            self.surface_cache = SurfaceCache(
                maxsize=self.config.surface_cache_size,
                phi_tol=self.config.surface_phi_tol,
            )
        else:
            self.surface_cache = None
        if self.config.cells_path and self.surface_cache is not None:
            try:
                self.surface_cache.load_file(self.config.cells_path)
            except FileNotFoundError:
                pass  # first run: nothing persisted yet
        #: Incremental-round bookkeeping (``config.incremental``): the
        #: per-job dirty signature and the allocation vector handed out
        #: last round, plus a counter driving the periodic forced refresh.
        self._last_sigs: Dict[str, tuple] = {}
        self._last_allocs: Dict[str, np.ndarray] = {}
        self._rounds_since_full = 0

    # ------------------------------------------------------------------

    def save_cells(self, path: Optional[str] = None) -> int:
        """Persist the cache's phi-free ``TputCells`` for warm restarts.

        Writes to ``path`` (default: ``config.cells_path``) via
        :meth:`SurfaceCache.to_file`; returns the number of entries
        written, 0 when there is no cache or no target path.
        """
        target = path if path is not None else self.config.cells_path
        if target is None or self.surface_cache is None:
            return 0
        return self.surface_cache.to_file(target)

    def export_cells(self) -> list:
        """Picklable warm-cells snapshot (``SurfaceCache.export_cells``).

        The in-memory counterpart of :meth:`save_cells`: the sharded
        policy's process executor ships these between worker generations
        so a replacement scheduler starts with warm throughput cells
        instead of re-deriving every surface.  Returns ``[]`` when
        caching is off.
        """
        if self.surface_cache is None:
            return []
        return self.surface_cache.export_cells()

    def import_cells(self, entries) -> int:
        """Merge an :meth:`export_cells` snapshot; 0 when caching is off.

        Decision-safe: a cells hit feeds the identical table assembly a
        rebuild would (the same guarantee ``cells_path`` loading makes).
        """
        if self.surface_cache is None:
            return 0
        return self.surface_cache.import_cells(entries)

    def set_cluster(self, cluster: ClusterSpec) -> None:
        """Replace the cluster (cloud auto-scaling).

        The legacy engine resets the GA bootstrap population whenever the
        node layout (count, per-node GPUs, or GPU types) changed, as it
        always has.  The v2 engine instead *remaps* the saved population
        onto the new layout — dropped nodes truncate from the end, new
        nodes start empty, exactly like the simulator reshapes live
        allocations — so warm starts survive autoscaling resizes; only a
        GPU-type-set change (which invalidates the per-type speedup
        semantics) still resets it.
        """
        if cluster.nodes != self.cluster.nodes:
            self._resized_since_round = True
            if (
                self.config.ga_engine == "legacy"
                or self._population is None
                or cluster.gpu_types != self.cluster.gpu_types
            ):
                self._population = None
                self._population_job_ids = []
            else:
                old = self._population
                keep = min(old.shape[2], cluster.num_nodes)
                remapped = np.zeros(
                    (old.shape[0], old.shape[1], cluster.num_nodes),
                    dtype=np.int64,
                )
                remapped[:, :, :keep] = old[:, :, :keep]
                self._population = remapped
        self.cluster = cluster

    def _bootstrap_population(self, job_ids: Sequence[str]) -> Optional[np.ndarray]:
        """Re-index the saved population for this round's job set."""
        if self._population is None or self._population.size == 0:
            return None
        old_index = {jid: i for i, jid in enumerate(self._population_job_ids)}
        pop_size = self._population.shape[0]
        num_nodes = self.cluster.num_nodes
        out = np.zeros((pop_size, len(job_ids), num_nodes), dtype=np.int64)
        for new_j, jid in enumerate(job_ids):
            old_j = old_index.get(jid)
            if old_j is not None:
                out[:, new_j, :] = self._population[:, old_j, :]
        return out

    def _tables_legacy(
        self,
        jobs: Sequence[SchedJobInfo],
        caps: Sequence[int],
        type_speeds: np.ndarray,
    ) -> List[np.ndarray]:
        """Per-job table builds — the legacy engine's bit-pinned path."""
        cfg = self.config
        cache = self.surface_cache
        single_type = self.cluster.is_single_type
        tables: List[np.ndarray] = []
        for job, cap in zip(jobs, caps):
            if single_type:
                # Homogeneous fast path: the seed's (K+1, 2) table, at the
                # cluster's (single) device speed — 1.0 on the reference T4.
                if cache is not None:
                    table, _ = cache.get_flat(
                        job.report,
                        cap,
                        cfg.table_points_per_octave,
                        float(type_speeds[0]),
                    )
                else:
                    table = build_speedup_table(
                        job.report.goodput_model(),
                        max_gpus=cap,
                        points_per_octave=cfg.table_points_per_octave,
                        speed=float(type_speeds[0]),
                    )
            else:
                if cache is not None:
                    table, _ = cache.get_typed(
                        job.report,
                        cap,
                        cfg.table_points_per_octave,
                        type_speeds,
                    )
                else:
                    table = build_typed_speedup_table(
                        job.report.goodput_model(),
                        max_gpus=cap,
                        type_speeds=type_speeds,
                        points_per_octave=cfg.table_points_per_octave,
                    )
            tables.append(table)
        return tables

    def _tables_batched(
        self,
        jobs: Sequence[SchedJobInfo],
        caps: Sequence[int],
        type_speeds: np.ndarray,
    ) -> List[np.ndarray]:
        """Batched table builds — the v2 engine's path.

        Cache hits are looked up per job (two-phase protocol); all misses
        are then built in one :func:`build_surfaces_batch` pass and stored.
        Values match the per-job builders up to pow-kernel rounding, which
        is inside the v2 engine's benchmarked-equivalence budget.
        """
        cfg = self.config
        cache = self.surface_cache
        single_type = self.cluster.is_single_type
        ppo = cfg.table_points_per_octave
        speed0 = float(type_speeds[0])
        speeds = (
            (speed0,) if single_type else tuple(float(s) for s in type_speeds)
        )
        tables: List[Optional[np.ndarray]] = [None] * len(jobs)
        # Jobs without a cached table: (index, table key, cells key, cells).
        missing: List[tuple] = []
        if cache is not None:
            for idx, (job, cap) in enumerate(zip(jobs, caps)):
                key = (
                    cache.flat_key(job.report, cap, ppo, speed0)
                    if single_type
                    else cache.typed_key(job.report, cap, ppo, type_speeds)
                )
                entry = cache.lookup(key)
                if entry is not None:
                    tables[idx] = entry[0]
                    continue
                # Second level: phi-free throughput cells survive across
                # rounds while only phi drifted (the steady-state case).
                ckey = cache.cells_key(job.report, cap, ppo, speeds)
                centry = cache.lookup(ckey)
                cells = TputCells(*centry) if centry is not None else None
                missing.append((idx, key, ckey, cells))
        else:
            missing = [(idx, None, None, None) for idx in range(len(jobs))]
        if missing:
            models = [jobs[idx].report.goodput_model() for idx, _, _, _ in missing]
            miss_caps = [caps[idx] for idx, _, _, _ in missing]
            to_build = [
                pos for pos, (_, _, _, cells) in enumerate(missing)
                if cells is None
            ]
            if to_build:
                built_cells = build_tput_cells(
                    [models[pos] for pos in to_build],
                    [miss_caps[pos] for pos in to_build],
                    points_per_octave=ppo,
                    type_speeds=speeds,
                )
                for pos, cells in zip(to_build, built_cells):
                    idx, key, ckey, _ = missing[pos]
                    if cache is not None:
                        # Copy out of the batch's shared backing arrays:
                        # a cached view would pin the whole round's buffer
                        # for as long as any one entry survives the LRU.
                        cache.store(
                            ckey,
                            (
                                cells.tput.copy(),
                                cells.m_cells.copy(),
                                cells.counts.copy(),
                            ),
                        )
                    missing[pos] = (idx, key, ckey, cells)
            built = build_surfaces_batch(
                models,
                miss_caps,
                points_per_octave=ppo,
                type_speeds=speeds,
                cells=[cells for _, _, _, cells in missing],
            )
            for (idx, key, _, _), entry in zip(missing, built):
                if cache is not None:
                    entry = cache.store(key, (entry[0].copy(), entry[1].copy()))
                tables[idx] = entry[0]
        return tables

    def build_problem(self, jobs: Sequence[SchedJobInfo]) -> AllocationProblem:
        """Construct the GA allocation problem for one scheduling round.

        Speedup tables come from the shared :class:`SurfaceCache` when one
        is configured, so ``optimize``, ``utility``, and autoscaler probes
        that see the same reports within a tick build each job's table at
        most once; with caching disabled every table is rebuilt in place.
        The cache is grown to the round's working-set size first (see
        ``_CACHE_SLOTS_PER_JOB``).  The legacy engine builds missing tables
        one job at a time (bit-pinned values); the v2 engine batches all
        misses into one padded surface pass.
        """
        cfg = self.config
        cache = self.surface_cache
        total_gpus = self.cluster.total_gpus
        type_speeds = self.cluster.type_speeds()
        if cache is not None and jobs:
            cache.ensure_capacity(
                max(cfg.surface_cache_size, len(jobs) * _CACHE_SLOTS_PER_JOB)
            )
        caps = [job.report.exploration_cap(total_gpus) for job in jobs]
        if cfg.ga_engine == "legacy":
            tables = self._tables_legacy(jobs, caps, type_speeds)
        else:
            tables = self._tables_batched(jobs, caps, type_speeds)
        ga_jobs: List[JobGAInfo] = []
        for job, cap, table in zip(jobs, caps, tables):
            weight = job_weight(job.gputime, cfg.gputime_thres, cfg.weight_decay)
            ga_jobs.append(
                JobGAInfo(
                    speedup_table=table,
                    weight=weight,
                    max_gpus=cap,
                    current_alloc=job.current_alloc,
                    running=bool(job.current_alloc.sum() > 0),
                )
            )
        return AllocationProblem(
            self.cluster,
            ga_jobs,
            restart_penalty=cfg.restart_penalty,
            forbid_interference=cfg.forbid_interference,
        )

    def _dirty_rows(
        self, jobs: Sequence[SchedJobInfo], sigs: Dict[str, tuple]
    ) -> np.ndarray:
        """(J,) bool mask of jobs whose scheduling inputs moved.

        A job is dirty when it is new, its phi-free signature
        (``theta_fingerprint()`` + exploration cap) changed, or its current
        allocation is no longer exactly what the previous round assigned
        (external reshapes, restarts mid-flight).  phi drift alone is
        clean by design — see ``PolluxSchedConfig.incremental``.
        """
        dirty = np.zeros(len(jobs), dtype=bool)
        for idx, job in enumerate(jobs):
            prev = self._last_sigs.get(job.job_id)
            last = self._last_allocs.get(job.job_id)
            if (
                prev is None
                or prev != sigs[job.job_id]
                or last is None
                or not np.array_equal(job.current_alloc, last)
            ):
                dirty[idx] = True
        return dirty

    def optimize(
        self, jobs: Sequence[SchedJobInfo]
    ) -> Dict[str, np.ndarray]:
        """Run one scheduling round; return job_id -> allocation vector."""
        self.rounds += 1
        job_ids = [job.job_id for job in jobs]
        if len(set(job_ids)) != len(job_ids):
            raise ValueError("duplicate job ids in scheduling round")
        if not jobs:
            self._population = None
            self._population_job_ids = []
            self._last_sigs = {}
            self._last_allocs = {}
            self.last_utility = 0.0
            self.last_phase_timings = {}
            return {}

        t_start = time.perf_counter()
        cfg = self.config
        mutate_rows: Optional[np.ndarray] = None
        sigs: Dict[str, tuple] = {}
        if cfg.incremental:
            total_gpus = self.cluster.total_gpus
            sigs = {
                job.job_id: (
                    job.report.theta_fingerprint(),
                    job.report.exploration_cap(total_gpus),
                )
                for job in jobs
            }
            # Departures, resizes, a missing warm population, and the
            # periodic refresh all force an unrestricted round.
            full = (
                self._resized_since_round
                or self._population is None
                or bool(set(self._last_sigs) - set(job_ids))
                or (
                    cfg.incremental_refresh_every > 0
                    and self._rounds_since_full >= cfg.incremental_refresh_every
                )
            )
            if not full:
                dirty = self._dirty_rows(jobs, sigs)
                if not dirty.any():
                    # Clean round: nothing the GA could act on has moved —
                    # skip table builds and the GA, replay last round.
                    self._rounds_since_full += 1
                    self.last_phase_timings = {
                        "table_ms": 0.0,
                        "repair_ms": 0.0,
                        "fitness_ms": 0.0,
                        "select_ms": 0.0,
                        "mutate_ms": 0.0,
                        "skipped": 1.0,
                        "total_ms": (time.perf_counter() - t_start) * 1000.0,
                    }
                    return {
                        jid: self._last_allocs[jid].copy() for jid in job_ids
                    }
                mutate_rows = dirty
                self._rounds_since_full += 1
            else:
                self._rounds_since_full = 0

        problem = self.build_problem(jobs)
        table_ms = (time.perf_counter() - t_start) * 1000.0
        ga_config = self.config.ga
        if self._resized_since_round:
            # First round on a changed node layout: force the full budget
            # (the warm-started population is tuned to the old layout and
            # would otherwise plateau-exit before adapting, e.g. before
            # ever occupying freshly grown nodes).
            if ga_config.patience > 0:
                ga_config = replace(ga_config, patience=0)
            self._resized_since_round = False
        optimizer = make_optimizer(
            self.config.ga_engine, problem, ga_config, rng=self._rng
        )
        initial = self._bootstrap_population(job_ids)
        if mutate_rows is not None:
            best, _, population = optimizer.run(
                initial=initial, mutate_rows=mutate_rows
            )
        else:
            best, _, population = optimizer.run(initial=initial)

        self._population = population
        self._population_job_ids = list(job_ids)
        self.last_utility = problem.utility(best)
        self.last_phase_timings = {
            "table_ms": table_ms,
            **optimizer.phase_ms,
            "total_ms": (time.perf_counter() - t_start) * 1000.0,
        }
        result = {jid: best[j].copy() for j, jid in enumerate(job_ids)}
        if cfg.incremental:
            self._last_sigs = sigs
            self._last_allocs = {
                jid: alloc.copy() for jid, alloc in result.items()
            }
        return result

    def utility(self, jobs: Sequence[SchedJobInfo], matrix: np.ndarray) -> float:
        """UTILITY(A) of an allocation matrix for these jobs (Eqn. 17)."""
        problem = self.build_problem(jobs)
        return problem.utility(matrix)
