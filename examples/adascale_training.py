#!/usr/bin/env python
"""Measure the gradient noise scale during *real* (numpy) training and
verify Pollux's efficiency predictions (Sec. 3.1, Fig. 2b).

Trains a linear-regression problem with data-parallel SGD, estimates phi
from per-replica gradients exactly as PolluxAgent does, predicts
EFFICIENCY(m) for a range of batch sizes with Eqn. 7, then *actually trains*
at each batch size (with AdaScale LR scaling) and compares the measured
efficiency — the ratio of iterations-to-target at m0 versus at m, corrected
for batch size — against the prediction.

Run:  python examples/adascale_training.py
"""

import numpy as np

from repro.core import EfficiencyModel
from repro.training import AdaScaleSGD, DataParallelExecutor, LinearRegressionProblem


def iterations_to_target(
    problem: LinearRegressionProblem,
    batch_size: int,
    target_loss: float,
    num_replicas: int,
    seed: int,
) -> int:
    optimizer = AdaScaleSGD(
        problem,
        DataParallelExecutor(problem, num_replicas=num_replicas, seed=seed),
        init_batch_size=32,
        init_lr=0.02,
        seed=seed,
    )
    return optimizer.train_to_loss(target_loss, batch_size=batch_size)


def main() -> None:
    problem = LinearRegressionProblem(num_examples=4096, dim=32, seed=1)
    target_loss = 0.35
    m0 = 32

    # ------------------------------------------------------------------
    # 1. Measure phi during a short profiling run at m0, like PolluxAgent.
    # ------------------------------------------------------------------
    probe = AdaScaleSGD(
        problem,
        DataParallelExecutor(problem, num_replicas=4, seed=0),
        init_batch_size=m0,
        init_lr=0.02,
        seed=0,
    )
    probe.train(num_iters=40, batch_size=m0)
    phi = probe.noise_scale
    print(f"measured gradient noise scale at m0={m0}: phi = {phi:.1f}\n")

    # ------------------------------------------------------------------
    # 2. Predicted vs measured efficiency across batch sizes (Fig. 2b).
    # ------------------------------------------------------------------
    model = EfficiencyModel(float(m0), phi)
    seeds = (1, 2, 3)
    base_iters = np.mean(
        [iterations_to_target(problem, m0, target_loss, 1, s) for s in seeds]
    )
    print(f"{'batch':>6s} {'predicted':>10s} {'measured':>10s}")
    for m in (32, 64, 128, 256, 512):
        predicted = model.efficiency(m)
        iters = np.mean(
            [
                iterations_to_target(problem, m, target_loss, min(4, m // 16), s)
                for s in seeds
            ]
        )
        # Samples to target: iters * m; efficiency = base samples / samples.
        measured = (base_iters * m0) / (iters * m)
        print(f"{m:6d} {predicted:10.3f} {min(measured, 1.0):10.3f}")

    print(
        "\nLarger batches process more samples for the same progress —"
        "\nexactly the EFFICIENCY_t(m) = (phi + m0)/(phi + m) prediction."
    )


if __name__ == "__main__":
    main()
