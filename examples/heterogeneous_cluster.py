"""Walkthrough: Pollux on a heterogeneous (multi-GPU-type) cluster.

Builds a mixed T4 + V100 fleet, shows how the typed abstractions fit
together (per-type speedup tables, throughput-ratio projection, the
type-aware genetic algorithm), then runs a small trace through Pollux and
reports per-type utilization.

Run:  python examples/heterogeneous_cluster.py [--jobs N] [--hours H]
"""

import argparse

import repro.policy
from repro.cluster import GPU_TYPES, ClusterSpec
from repro.core import GAConfig, PolluxSchedConfig, build_typed_speedup_table
from repro.core.throughput import project_throughput_params
from repro.sim import SimConfig, Simulator
from repro.workload import MODEL_ZOO, TraceConfig, generate_trace, true_goodput_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--hours", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # 1. A typed cluster: two 4-GPU V100 nodes plus four 4-GPU T4 nodes
    # (fastest group first, so autoscaling shrink sheds T4 nodes first).
    cluster = ClusterSpec.heterogeneous((("v100", 2, 4), ("t4", 4, 4)))
    print("== cluster ==")
    for gpu_type, cap in zip(cluster.gpu_types, cluster.type_capacities()):
        print(
            f"  {int(cap):3d} x {gpu_type.name:<6s} "
            f"(compute speed {gpu_type.compute_speed:g}x the T4 reference)"
        )

    # 2. Throughput-ratio projection: a profile measured on T4 nodes
    # predicts V100 iteration times by scaling T_grad with the speed ratio.
    model = true_goodput_model(MODEL_ZOO["resnet18-cifar10"])
    ratio = GPU_TYPES["v100"].compute_speed / GPU_TYPES["t4"].compute_speed
    t4_t_iter = float(model.throughput_model.t_iter(1, 2, 256.0))
    v100_t_iter = float(model.throughput_model.t_iter(1, 2, 256.0, speed=ratio))
    projected = project_throughput_params(model.throughput_model.params, ratio)
    print("\n== throughput-ratio projection (2 GPUs, batch 256) ==")
    print(f"  T_iter on t4:              {t4_t_iter * 1000:.1f} ms")
    print(f"  T_iter projected to v100:  {v100_t_iter * 1000:.1f} ms")
    print(f"  projected beta_grad:       {projected.beta_grad:.2e} s/sample")

    # 3. Per-type speedup tables: what the genetic algorithm actually sees.
    table = build_typed_speedup_table(model, 8, cluster.type_speeds())
    names = [t.name for t in cluster.gpu_types]
    print("\n== per-type SPEEDUP table (co-located placements) ==")
    print("  K " + "".join(f"{n:>8s}" for n in names))
    for k in (1, 2, 4, 8):
        print(f"  {k} " + "".join(f"{table[k, 0, i]:8.2f}" for i in range(len(names))))

    # 4. Run a small trace through Pollux on the mixed fleet.
    trace = generate_trace(
        TraceConfig(
            num_jobs=args.jobs,
            duration_hours=args.hours,
            seed=args.seed,
            max_gpus=cluster.total_gpus,
        )
    )
    scheduler = repro.policy.create(
        "pollux",
        cluster=cluster,
        config=PolluxSchedConfig(ga=GAConfig(population_size=16, generations=10)),
    )
    sim = Simulator(
        cluster, scheduler, trace, SimConfig(seed=args.seed, max_hours=50.0)
    )
    result = sim.run()

    print(f"\n== Pollux on {args.jobs} jobs / {args.hours:g}h trace ==")
    print(f"  avg JCT:        {result.avg_jct() / 3600:.2f} h")
    print(f"  makespan:       {result.makespan() / 3600:.2f} h")
    print(f"  unfinished:     {result.num_unfinished}")
    print("  per-type GPU utilization:")
    for name, util in sorted(result.per_type_utilization().items()):
        print(f"    {name:<6s} {util * 100:5.1f}%")


if __name__ == "__main__":
    main()
