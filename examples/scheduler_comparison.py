#!/usr/bin/env python
"""Compare scheduling policies on one trace (Sec. 5.2/5.3, Table 2 style).

Generates a synthetic Philly-like trace, runs it through the selected
scheduling policies on the same simulated cluster, and prints Table-2-style
rows (average / tail JCT, makespan, average statistical efficiency).

Policies are selected by :mod:`repro.policy` registry name with one
``--policy`` flag — any policy registered with ``repro.policy.register``
(including your own) drops into the comparison without code changes here.

Run:  python examples/scheduler_comparison.py [--jobs N] [--nodes N]
      python examples/scheduler_comparison.py --policy pollux --policy tiresias
"""

import argparse
import time

import repro.policy
from repro.cluster import ClusterSpec
from repro.core import GAConfig, PolluxSchedConfig
from repro.sim import SimConfig, Simulator
from repro.workload import TraceConfig, generate_trace

DEFAULT_POLICIES = ("pollux", "optimus", "tiresias")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=40, help="number of jobs")
    parser.add_argument("--nodes", type=int, default=8, help="number of 4-GPU nodes")
    parser.add_argument("--hours", type=float, default=4.0, help="submission window")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="NAME",
        help="registry name of a policy to run; repeatable "
        f"(default: {', '.join(DEFAULT_POLICIES)}; "
        f"registered: {', '.join(repro.policy.available())})",
    )
    parser.add_argument(
        "--engine",
        choices=("v2", "legacy"),
        default="v2",
        help="Pollux GA engine: 'v2' (vectorized, default) or 'legacy' "
        "(the bit-pinned original)",
    )
    args = parser.parse_args()

    cluster = ClusterSpec.homogeneous(args.nodes, 4)
    trace = generate_trace(
        TraceConfig(
            num_jobs=args.jobs,
            duration_hours=args.hours,
            seed=args.seed,
            max_gpus=cluster.total_gpus,
        )
    )
    print(
        f"workload: {args.jobs} jobs over {args.hours} h on "
        f"{cluster.num_nodes} nodes x 4 GPUs"
    )

    # Per-policy registry kwargs beyond the uniform cluster/seed pair,
    # keyed by canonical name so aliases resolve to the same entry.
    extra_kwargs = {
        "pollux": dict(
            config=PolluxSchedConfig(
                ga=GAConfig(population_size=32, generations=12),
                ga_engine=args.engine,
            )
        ),
        "optimus": dict(max_gpus_per_job=cluster.total_gpus),
    }
    names = tuple(args.policy) if args.policy else DEFAULT_POLICIES

    results = {}
    for name in names:
        policy = repro.policy.create(
            name,
            cluster=cluster,
            **extra_kwargs.get(repro.policy.canonical(name), {}),
        )
        start = time.time()
        sim = Simulator(cluster, policy, trace, SimConfig(seed=7, max_hours=100))
        result = sim.run()
        results[policy.name] = result
        print(f"{result.format_summary()}   [{time.time() - start:.0f}s wall]")

    if "pollux" in results:
        pollux_jct = results["pollux"].avg_jct()
        print("\navg JCT relative to Pollux:")
        for name, result in results.items():
            print(f"  {name:<24s} {result.avg_jct() / pollux_jct:.2f}x")


if __name__ == "__main__":
    main()
