#!/usr/bin/env python
"""Compare Pollux with Tiresias+TunedJobs and Optimus+Oracle (Sec. 5.2/5.3).

Generates a synthetic Philly-like trace, runs it through all three
scheduling policies on the same simulated cluster, and prints Table-2-style
rows (average / tail JCT, makespan, average statistical efficiency).

Run:  python examples/scheduler_comparison.py [--jobs N] [--nodes N]
"""

import argparse
import time

from repro.cluster import ClusterSpec
from repro.core import GAConfig, PolluxSchedConfig
from repro.schedulers import OptimusScheduler, PolluxScheduler, TiresiasScheduler
from repro.sim import SimConfig, Simulator
from repro.workload import TraceConfig, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=40, help="number of jobs")
    parser.add_argument("--nodes", type=int, default=8, help="number of 4-GPU nodes")
    parser.add_argument("--hours", type=float, default=4.0, help="submission window")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine",
        choices=("v2", "legacy"),
        default="v2",
        help="Pollux GA engine: 'v2' (vectorized, default) or 'legacy' "
        "(the bit-pinned original)",
    )
    args = parser.parse_args()

    cluster = ClusterSpec.homogeneous(args.nodes, 4)
    trace = generate_trace(
        TraceConfig(
            num_jobs=args.jobs,
            duration_hours=args.hours,
            seed=args.seed,
            max_gpus=cluster.total_gpus,
        )
    )
    print(
        f"workload: {args.jobs} jobs over {args.hours} h on "
        f"{cluster.num_nodes} nodes x 4 GPUs"
    )

    schedulers = [
        PolluxScheduler(
            cluster,
            PolluxSchedConfig(
                ga=GAConfig(population_size=32, generations=12),
                ga_engine=args.engine,
            ),
        ),
        OptimusScheduler(max_gpus_per_job=cluster.total_gpus),
        TiresiasScheduler(),
    ]

    results = {}
    for scheduler in schedulers:
        start = time.time()
        sim = Simulator(cluster, scheduler, trace, SimConfig(seed=7, max_hours=100))
        result = sim.run()
        results[scheduler.name] = result
        print(f"{result.format_summary()}   [{time.time() - start:.0f}s wall]")

    pollux_jct = results["pollux"].avg_jct()
    print("\navg JCT relative to Pollux:")
    for name, result in results.items():
        print(f"  {name:<24s} {result.avg_jct() / pollux_jct:.2f}x")


if __name__ == "__main__":
    main()
