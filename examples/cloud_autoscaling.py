#!/usr/bin/env python
"""Goodput-based vs throughput-based cloud auto-scaling (Sec. 5.3.3, Fig. 10).

Trains a single large ImageNet job in a simulated cloud.  Pollux's
goodput-based autoscaler provisions few nodes early (large batches are
statistically inefficient at the start) and scales out as the gradient noise
scale grows; the Or-et-al throughput-based policy scales out immediately and
holds.  Pollux finishes slightly later but at a substantially lower cost in
node-hours.

Run:  python examples/cloud_autoscaling.py [--epochs N]
"""

import argparse
import dataclasses

import repro.policy
from repro.cluster import ClusterSpec
from repro.core import AutoscaleConfig, GAConfig, PolluxSchedConfig
from repro.sim import SimConfig, Simulator
from repro.workload import MODEL_ZOO, JobSpec


def make_job(epochs: float) -> JobSpec:
    profile = dataclasses.replace(MODEL_ZOO["resnet50-imagenet"], target_epochs=epochs)
    return JobSpec(
        name="imagenet-cloud",
        model=profile,
        submission_time=0.0,
        fixed_num_gpus=16,
        fixed_batch_size=profile.init_batch_size,
    )


def run_policy(policy: str, job: JobSpec, max_nodes: int):
    cluster = ClusterSpec.homogeneous(1, 4)  # both policies start small
    config = SimConfig(
        seed=0,
        max_hours=400,
        scheduling_interval=120.0,
        tick_seconds=60.0,
        agent_interval=60.0,
    )
    # Both autoscaling behaviors come from the same Policy API: the policy
    # object owns its resize logic (decide_resize), no separate hook.
    if policy == "pollux":
        scheduler = repro.policy.create(
            "pollux",
            cluster=cluster,
            config=PolluxSchedConfig(ga=GAConfig(population_size=24, generations=10)),
            autoscale=AutoscaleConfig(
                min_nodes=1,
                max_nodes=max_nodes,
                low_util_thres=0.45,
                high_util_thres=0.75,
            ),
            autoscale_interval=600.0,
        )
    else:
        scheduler = repro.policy.create(
            "orelastic",
            autoscale=True,
            min_nodes=1,
            max_nodes=max_nodes,
            autoscale_interval=1200.0,
        )
    sim = Simulator(cluster, scheduler, [job], config)
    return sim.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--epochs",
        type=float,
        default=9.0,
        help="ImageNet epochs to train (scaled down from 90 for demo runtime)",
    )
    parser.add_argument("--max-nodes", type=int, default=16)
    args = parser.parse_args()

    job = make_job(args.epochs)
    print(f"training {job.model.name} for {args.epochs} statistical epochs\n")

    results = {}
    for policy in ("pollux", "or-etal"):
        result = run_policy(policy, job, args.max_nodes)
        results[policy] = result
        jct = result.records[0].jct
        print(
            f"{policy:<10s} completion {jct / 3600.0:7.2f} h   "
            f"cost {result.node_hours():7.1f} node-hours"
        )
        # Node-count trajectory, sampled every ~10 % of the run.
        samples = result.timeline[:: max(1, len(result.timeline) // 10)]
        trail = "  nodes over time: " + " ".join(
            f"{s.num_nodes}" for s in samples
        )
        print(trail)
        eff_trail = "  efficiency:      " + " ".join(
            f"{s.mean_efficiency:.2f}" for s in samples
        )
        print(eff_trail + "\n")

    pollux, oretal = results["pollux"], results["or-etal"]
    cost_saving = 1.0 - pollux.node_hours() / oretal.node_hours()
    slowdown = pollux.records[0].jct / oretal.records[0].jct - 1.0
    print(
        f"Pollux trains {cost_saving * 100.0:.0f}% cheaper with "
        f"{slowdown * 100.0:.0f}% longer completion time "
        f"(paper: 25% cheaper, 6% longer)"
    )


if __name__ == "__main__":
    main()
