#!/usr/bin/env python
"""Run a scheduling policy as a live wall-clock service (repro.host).

The same registry-constructed Policy objects that drive the discrete-time
simulator drive the real-time :class:`~repro.host.PolicyHost` here,
unchanged — the Blox-style policy/mechanism split in action.

Two modes:

- **live** (default): an in-process cluster of goodput-model-driven worker
  threads (:class:`~repro.host.ThreadedBackend`).  Jobs are submitted
  *while the host is running*; the host dispatches the policy on its
  wall-clock cadence and prints per-round metrics.  ``--time-scale``
  compresses cluster time (600 = one wall second is 10 cluster minutes).
- **--replay**: replays a recorded trace through
  :class:`~repro.host.ReplayBackend` and verifies the host reproduces the
  simulator's decision stream bit-for-bit (the host-agreement guarantee).

Run:  python examples/live_scheduler.py [--policy pollux] [--jobs 4]
      python examples/live_scheduler.py --replay
"""

import argparse
import time

import repro.policy
from repro.cluster import ClusterSpec
from repro.core import GAConfig, PolluxSchedConfig
from repro.host import PolicyHost, ReplayBackend, ThreadedBackend, ThreadedConfig
from repro.sim import SimConfig, Simulator, decision_digest
from repro.workload import MODEL_ZOO, JobSpec, TraceConfig, generate_trace

MODELS = ("resnet18-cifar10", "neumf-movielens", "deepspeech2-arctic")


def make_policy(name: str, cluster: ClusterSpec):
    kwargs = {"cluster": cluster, "seed": 0}
    if repro.policy.canonical(name) == "pollux":
        kwargs["config"] = PolluxSchedConfig(
            ga=GAConfig(population_size=16, generations=8)
        )
    return repro.policy.create(name, **kwargs)


def run_live(args: argparse.Namespace) -> None:
    cluster = ClusterSpec.homogeneous(args.nodes, args.gpus_per_node)
    policy = make_policy(args.policy, cluster)
    backend = ThreadedBackend(
        cluster,
        ThreadedConfig(time_scale=args.time_scale, quantum_seconds=0.02),
    )
    host = PolicyHost(policy, backend)
    print(
        f"starting live host: policy={policy.name} cluster="
        f"{args.nodes}x{args.gpus_per_node} time_scale={args.time_scale:g}"
    )
    host.start()
    # Submit jobs live, spread over the first (scaled) half hour.
    for i in range(args.jobs):
        model = MODEL_ZOO[MODELS[i % len(MODELS)]]
        backend.submit(
            JobSpec(
                name=f"live-{i}",
                model=model,
                submission_time=i * 1800.0 / max(args.jobs - 1, 1),
                fixed_num_gpus=2,
                fixed_batch_size=int(model.init_batch_size),
            )
        )
        print(f"submitted live-{i} ({model.name}) at t={backend.now():8.0f}s")
        time.sleep(0.3)
    result = host.drain(timeout=300.0)
    assert result is not None, "host did not drain in time"
    print("\nper-round metrics (last 5):")
    for round_ in list(host.metrics.rounds)[-5:]:
        print(
            f"  t={round_.time:8.0f}s jobs={round_.num_jobs} "
            f"applied={round_.decisions_applied} "
            f"restarts={round_.restarts_triggered} "
            f"latency={round_.latency_s * 1000:6.1f}ms"
        )
    summary = host.metrics.summary()
    print(
        f"\n{summary['scheduling_rounds']} scheduling rounds, "
        f"{summary['decisions_applied']} decisions, "
        f"{summary['restarts_triggered']} restarts, "
        f"mean dispatch latency {summary['mean_latency_s'] * 1000:.1f}ms"
    )
    for record in result.records:
        jct = record.jct
        status = f"JCT {jct / 3600:.2f}h" if jct is not None else "unfinished"
        print(f"  {record.name:10s} {record.model:20s} {status}")
    print(f"live host done: avg JCT {result.avg_jct() / 3600.0:.2f}h")


def run_replay(args: argparse.Namespace) -> None:
    cluster = ClusterSpec.homogeneous(args.nodes, args.gpus_per_node)
    trace = generate_trace(
        TraceConfig(
            num_jobs=args.jobs,
            duration_hours=1.0,
            seed=1,
            max_gpus=cluster.total_gpus,
            gpus_per_node=args.gpus_per_node,
        )
    )
    config = SimConfig(seed=1001, max_hours=30.0)
    print(f"replaying {args.jobs} recorded jobs through both hosts...")
    sim_result = Simulator(
        cluster, make_policy(args.policy, cluster), trace, config
    ).run()
    host = PolicyHost(
        make_policy(args.policy, cluster),
        ReplayBackend(cluster, trace, config),
    )
    host_result = host.run()
    sim_digest = decision_digest(sim_result)
    host_digest = decision_digest(host_result)
    print(f"simulator digest  {sim_digest[:16]}")
    print(f"replay digest     {host_digest[:16]}")
    assert sim_digest == host_digest, "replay host diverged from simulator"
    print(
        "bit-for-bit agreement: the wall-clock host IS the simulator's "
        "scheduler on a recorded trace"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="pollux")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--gpus-per-node", type=int, default=4)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1200.0,
        help="cluster seconds per wall-clock second (live mode)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="replay a recorded trace and verify simulator agreement",
    )
    args = parser.parse_args()
    if args.replay:
        run_replay(args)
    else:
        run_live(args)


if __name__ == "__main__":
    main()
