#!/usr/bin/env python
"""Drive the scheduling service end-to-end over HTTP (repro.service).

Boots the full stack in one process — a live
:class:`~repro.host.ThreadedBackend` cluster, a
:class:`~repro.host.PolicyHost`, the multi-tenant
:class:`~repro.service.SchedulerService`, and the stdlib
:class:`~repro.service.ServiceServer` — then acts as two tenant clients
against it with plain ``urllib``: submit jobs, hit a quota, watch status,
cancel, read per-tenant usage, and scrape ``/metrics``.

The operator guide (``docs/operating.md``) documents every route and
metric shown here.

Run:  python examples/service_client.py [--time-scale 2400]
"""

import argparse
import json
import time
import urllib.error
import urllib.request

import repro.policy
from repro.cluster import ClusterSpec
from repro.host import PolicyHost, ThreadedBackend, ThreadedConfig
from repro.service import SchedulerService, ServiceServer


def call(url, method="GET", body=None, tenant=None):
    """One API call; returns (status, parsed-or-raw body)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if tenant:
        request.add_header("X-Tenant", tenant)
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            raw = resp.read().decode()
            status = resp.status
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode()
        status = exc.code
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-scale", type=float, default=2400.0)
    args = parser.parse_args()

    cluster = ClusterSpec.homogeneous(2, 4)
    backend = ThreadedBackend(
        cluster,
        ThreadedConfig(time_scale=args.time_scale, quantum_seconds=0.02),
    )
    host = PolicyHost(
        repro.policy.create("tiresias", cluster=cluster, seed=0), backend
    )
    host.start()
    service = SchedulerService(host, quotas={"research": 2.0})
    server = ServiceServer(service).start()
    base = server.url
    print(f"service listening on {base}")

    status, health = call(f"{base}/healthz")
    print(f"healthz: {status} policy={health['policy']} backend={health['backend']}")

    # Tenant "prod" (unlimited quota) submits two jobs.
    for i in range(2):
        status, job = call(
            f"{base}/v1/jobs",
            "POST",
            {"model": "neumf-movielens", "num_gpus": 2, "name": f"train-{i}"},
            tenant="prod",
        )
        print(f"prod submit: {status} {job['job_id']} state={job['state']}")

    # Tenant "research" has a 2 GPU-equivalent quota: the second submit
    # bounces with 429 + Retry-After.
    status, job = call(
        f"{base}/v1/jobs",
        "POST",
        {"model": "resnet18-cifar10", "num_gpus": 2},
        tenant="research",
    )
    print(f"research submit: {status} {job['job_id']}")
    status, err = call(
        f"{base}/v1/jobs",
        "POST",
        {"model": "resnet18-cifar10", "num_gpus": 1},
        tenant="research",
    )
    print(f"research over quota: {status} {err['error']}")

    # Tenant isolation: research cannot see prod's jobs.
    status, _ = call(f"{base}/v1/jobs/prod/train-0", tenant="research")
    print(f"cross-tenant read: {status} (isolation)")

    # Cancel one job, then watch the rest run to completion.
    status, job = call(f"{base}/v1/jobs/prod/train-1", "DELETE", tenant="prod")
    print(f"cancel prod/train-1: {status} state={job['state']}")

    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        status, job = call(f"{base}/v1/jobs/prod/train-0", tenant="prod")
        if job["state"] == "complete":
            print(f"prod/train-0 complete: jct={job['jct_s']:.0f} host-seconds")
            break
        time.sleep(0.25)

    for tenant in ("prod", "research"):
        status, usage = call(f"{base}/v1/tenants/{tenant}")
        print(
            f"usage[{tenant}]: demand={usage['demand_gpu_equivalents']:g} eq, "
            f"completed={usage['completed_total']} "
            f"cancelled={usage['cancelled_total']} "
            f"rejected={usage['rejected_total']}"
        )

    status, page = call(f"{base}/metrics")
    wanted = ("scheduler_rounds_total", "scheduler_tenant_demand_gpu_equivalents")
    for line in page.splitlines():
        if line.startswith(wanted):
            print(f"metrics: {line}")

    server.close()
    host.stop()
    print("service stopped")


if __name__ == "__main__":
    main()
