#!/usr/bin/env python
"""Quickstart: model a DL job's goodput and let Pollux tune it.

Walks through the paper's core ideas on one job (ResNet18 on CIFAR-10):

1. fit the throughput model (Eqn. 8-11) to observed iteration times,
2. measure statistical efficiency via the gradient noise scale (Eqn. 7),
3. combine them into GOODPUT (Eqn. 6) and find the best batch size
   (Eqn. 13) for several GPU allocations,
4. build the SPEEDUP table (Eqn. 15) PolluxSched would schedule with.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    EfficiencyModel,
    PolluxAgent,
    build_speedup_table,
)
from repro.workload import MODEL_ZOO


def main() -> None:
    profile = MODEL_ZOO["resnet18-cifar10"]
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. A PolluxAgent profiles the job during training.  Here the "real
    #    system" is the model zoo's ground truth plus measurement noise.
    # ------------------------------------------------------------------
    agent = PolluxAgent(
        init_batch_size=float(profile.init_batch_size),
        init_lr=profile.init_lr,
        limits=profile.limits,
    )
    truth = profile.throughput_true
    for nodes, gpus in [(1, 1), (1, 2), (1, 4), (2, 8), (4, 16)]:
        for batch_size in (128, 256, 512, 1024, 2048):
            if batch_size > gpus * profile.max_local_bsz:
                continue
            t_true = float(truth.t_iter(nodes, gpus, batch_size))
            t_obs = t_true * rng.lognormal(sigma=0.03)
            agent.record_iteration(nodes, gpus, batch_size, t_obs)
    theta = agent.fit()
    print("fitted theta_sys:")
    for name in (
        "alpha_grad",
        "beta_grad",
        "alpha_sync_local",
        "beta_sync_local",
        "alpha_sync_node",
        "beta_sync_node",
        "gamma",
    ):
        print(f"  {name:18s} = {getattr(theta, name):.5f}")

    # ------------------------------------------------------------------
    # 2. Gradient statistics -> noise scale -> statistical efficiency.
    # ------------------------------------------------------------------
    phi = profile.gns.phi(0.5)  # mid-training
    agent.record_grad_stats(var=phi / profile.init_batch_size, sqr=1.0)
    eff = EfficiencyModel(float(profile.init_batch_size), phi)
    print(f"\ngradient noise scale at mid-training: phi = {phi:.0f}")
    for m in (128, 512, 2048, 8192):
        print(f"  EFFICIENCY(m={m:5d}) = {eff.efficiency(m):.3f}")

    # ------------------------------------------------------------------
    # 3. Goodput-optimal batch size per allocation (Eqn. 13).
    # ------------------------------------------------------------------
    model = agent.goodput_model()
    print("\ngoodput-optimal batch size by allocation:")
    for nodes, gpus in [(1, 1), (1, 4), (2, 8), (4, 16)]:
        m_star, goodput = model.optimize_batch_size(nodes, gpus)
        tput = float(model.throughput(nodes, gpus, m_star))
        print(
            f"  {gpus:2d} GPUs / {nodes} node(s): m* = {m_star:7.0f}   "
            f"throughput = {tput:8.0f} samples/s   goodput = {goodput:8.0f}"
        )

    # ------------------------------------------------------------------
    # 4. The speedup table PolluxSched's genetic algorithm consumes.
    # ------------------------------------------------------------------
    table = build_speedup_table(model, max_gpus=16)
    print("\nSPEEDUP table (column 0: co-located, column 1: multi-node):")
    for gpus in (1, 2, 4, 8, 16):
        print(
            f"  K={gpus:2d}:  single-node {table[gpus, 0]:6.2f}   "
            f"multi-node {table[gpus, 1]:6.2f}"
        )


if __name__ == "__main__":
    main()
