#!/usr/bin/env python
"""Fail if any relative markdown link points at a missing file.

Scans the repo's user-facing markdown (README.md and docs/) for inline
``[text](target)`` links, skips absolute URLs and pure in-page anchors,
and resolves each remaining target against the linking file's directory
(dropping any ``#fragment``).  Exit code 1 lists every broken link —
wired into the CI lint job so docs cannot rot silently.

Run:  python tools/check_markdown_links.py [files-or-dirs ...]
      (no arguments: README.md + docs/)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links, excluding images' alt brackets' inner text.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(paths: list[Path]):
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path


def check_file(md_file: Path) -> list[str]:
    errors = []
    text = md_file.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (md_file.parent / relative).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(
                f"{md_file.relative_to(REPO)}:{line}: broken link -> {target}"
            )
    return errors


def main(argv: list[str]) -> int:
    if argv:
        roots = [Path(arg).resolve() for arg in argv]
    else:
        roots = [REPO / "README.md", REPO / "docs"]
    errors = []
    checked = 0
    for md_file in iter_markdown(roots):
        checked += 1
        errors.extend(check_file(md_file))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} markdown file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
